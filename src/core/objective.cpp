#include "core/objective.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace haste::core {

void PolicyPartition::finalize() {
  row_offsets.clear();
  flat_tasks.clear();
  flat_energy.clear();
  flat_weight.clear();
  flat_required.clear();
  flat_col.clear();
  col_task.clear();
  col_delta.clear();
  col_weight.clear();
  col_required.clear();
  row_offsets.reserve(policies.size() + 1);
  std::size_t rows = 0;
  for (const Policy& policy : policies) rows += policy.tasks.size();
  flat_tasks.reserve(rows);
  flat_energy.reserve(rows);
  row_offsets.push_back(0);
  for (const Policy& policy : policies) {
    flat_tasks.insert(flat_tasks.end(), policy.tasks.begin(), policy.tasks.end());
    flat_energy.insert(flat_energy.end(), policy.slot_energy.begin(),
                       policy.slot_energy.end());
    row_offsets.push_back(static_cast<std::int32_t>(flat_tasks.size()));
  }
}

void PolicyPartition::finalize(const model::Network& net) {
  finalize();
  const auto& tasks = net.tasks();
  flat_weight.reserve(flat_tasks.size());
  flat_required.reserve(flat_tasks.size());
  for (model::TaskIndex j : flat_tasks) {
    const model::Task& task = tasks[static_cast<std::size_t>(j)];
    flat_weight.push_back(task.weight);
    flat_required.push_back(task.required_energy);
  }
  // Column index: dedup the flat rows on exact (task, delta) equality. The
  // linear scan is fine — partitions hold a handful of distinct columns. Keyed
  // on both fields for safety even though delta is task-determined here; a
  // row whose delta is NaN never matches and simply gets its own column.
  flat_col.reserve(flat_tasks.size());
  for (std::size_t t = 0; t < flat_tasks.size(); ++t) {
    const model::TaskIndex j = flat_tasks[t];
    const double d = flat_energy[t];
    std::int32_t col = -1;
    for (std::size_t cidx = 0; cidx < col_task.size(); ++cidx) {
      if (col_task[cidx] == j && col_delta[cidx] == d) {
        col = static_cast<std::int32_t>(cidx);
        break;
      }
    }
    if (col < 0) {
      col = static_cast<std::int32_t>(col_task.size());
      col_task.push_back(j);
      col_delta.push_back(d);
      col_weight.push_back(flat_weight[t]);
      col_required.push_back(flat_required[t]);
    }
    flat_col.push_back(col);
  }
}

std::vector<Policy> make_slot_policies(const model::Network& net, model::ChargerIndex i,
                                       const std::vector<DominantTaskSet>& dominant,
                                       model::SlotIndex slot) {
  const double slot_seconds = net.time().slot_seconds;
  const bool deadlines = net.has_deadlines();
  std::vector<Policy> policies;
  policies.reserve(dominant.size());
  for (const DominantTaskSet& set : dominant) {
    Policy policy;
    policy.orientation = set.orientation;
    for (model::TaskIndex j : set.tasks) {
      if (net.tasks()[static_cast<std::size_t>(j)].active(slot)) {
        double energy = net.potential_power(i, j) * slot_seconds;
        if (deadlines) {
          // Deadline discount, applied at row construction so every consumer
          // (greedy, kernels, brute force, the message protocol) prices the
          // same effective energy. A zero factor (hard-tardy or infeasible
          // row) drops the row before it enters the partition; a unit factor
          // skips the multiply so pre-deadline rows stay bit-identical to
          // the deadline-free expression.
          const double factor = net.tardiness_factor(j, slot);
          if (factor == 0.0) continue;
          if (factor != 1.0) energy *= factor;
        }
        policy.tasks.push_back(j);
        policy.slot_energy.push_back(energy);
      }
    }
    if (policy.tasks.empty()) continue;
    // Deduplicate policies whose active task sets coincide (frequent once
    // inactive tasks are dropped); the first witness orientation wins.
    const bool duplicate =
        std::any_of(policies.begin(), policies.end(),
                    [&](const Policy& other) { return other.tasks == policy.tasks; });
    if (!duplicate) policies.push_back(std::move(policy));
  }
  return policies;
}

namespace {

std::vector<PolicyPartition> build_partitions_impl(
    const model::Network& net, model::SlotIndex first_slot,
    const std::vector<std::vector<model::TaskIndex>>& candidates_per_charger) {
  const model::ChargerIndex n = net.charger_count();
  const double slot_seconds = net.time().slot_seconds;
  const bool deadlines = net.has_deadlines();
  // A dominant set pre-resolved once per charger: its covered rows with the
  // slot-invariant per-slot energy (the power law is fixed per (charger,
  // task)) and each row's activity window. The slot loop below then only
  // window-filters these rows instead of re-deriving power and activity per
  // (slot, charger, row) the way make_slot_policies does — same policies,
  // bit-identical energies, a fraction of the work. Deadline discounts are
  // slot-dependent and applied inside the slot loop.
  struct ResolvedSet {
    double orientation = 0.0;
    std::vector<model::TaskIndex> tasks;
    std::vector<double> energy;
    std::vector<model::SlotIndex> release;
    std::vector<model::SlotIndex> end;
    // Deadline columns, filled only when the network carries deadlines: the
    // row's deadline_slot (kNoDeadline when free — slot_factor treats that
    // as never binding) with infeasible hard-mode rows pre-collapsed to a
    // deadline of 0 so the slot loop's single `k >= deadline` test covers
    // both "tardy" and "never worth a row".
    std::vector<model::SlotIndex> deadline;
  };
  std::vector<std::vector<ResolvedSet>> resolved(static_cast<std::size_t>(n));
  for (model::ChargerIndex i = 0; i < n; ++i) {
    const std::vector<DominantTaskSet> dominant =
        extract_dominant_sets(net, i, candidates_per_charger[static_cast<std::size_t>(i)]);
    auto& sets = resolved[static_cast<std::size_t>(i)];
    sets.reserve(dominant.size());
    for (const DominantTaskSet& set : dominant) {
      ResolvedSet rows;
      rows.orientation = set.orientation;
      rows.tasks.reserve(set.tasks.size());
      rows.energy.reserve(set.tasks.size());
      rows.release.reserve(set.tasks.size());
      rows.end.reserve(set.tasks.size());
      if (deadlines) rows.deadline.reserve(set.tasks.size());
      for (model::TaskIndex j : set.tasks) {
        const model::Task& task = net.tasks()[static_cast<std::size_t>(j)];
        rows.tasks.push_back(j);
        rows.energy.push_back(net.potential_power(i, j) * slot_seconds);
        rows.release.push_back(task.release_slot);
        rows.end.push_back(task.end_slot);
        if (deadlines) {
          rows.deadline.push_back(net.deadline_infeasible(j) ? 0 : task.deadline_slot);
        }
      }
      sets.push_back(std::move(rows));
    }
  }
  const model::DeadlinePolicy& deadline_policy = net.deadline_policy();
  std::vector<PolicyPartition> partitions;
  partitions.reserve(static_cast<std::size_t>(net.horizon() - first_slot) *
                     static_cast<std::size_t>(n));
  for (model::SlotIndex k = first_slot; k < net.horizon(); ++k) {
    for (model::ChargerIndex i = 0; i < n; ++i) {
      const auto& sets = resolved[static_cast<std::size_t>(i)];
      PolicyPartition partition;
      partition.charger = i;
      partition.slot = k;
      partition.policies.reserve(sets.size());
      for (const ResolvedSet& rows : sets) {
        Policy policy;
        policy.orientation = rows.orientation;
        policy.tasks.reserve(rows.tasks.size());
        policy.slot_energy.reserve(rows.tasks.size());
        for (std::size_t r = 0; r < rows.tasks.size(); ++r) {
          if (rows.release[r] <= k && k < rows.end[r]) {
            double energy = rows.energy[r];
            // Same discount rule (and bit pattern) as make_slot_policies:
            // both reduce to DeadlinePolicy::slot_factor, rows.energy holds
            // the undiscounted potential * T_s product, factor == 1 rows
            // reuse it untouched, and factor == 0 rows (hard-tardy or
            // infeasible) never enter the partition. The `k >= deadline`
            // pre-test keeps rows whose deadline never binds — including
            // every row of a deadline-free or inert-deadline instance — on
            // the exact deadline-free fast path: no factor arithmetic at
            // all, just this one comparison.
            if (deadlines && k >= rows.deadline[r]) {
              const double factor = deadline_policy.slot_factor(k, rows.deadline[r]);
              if (factor == 0.0) continue;
              if (factor != 1.0) energy *= factor;
            }
            policy.tasks.push_back(rows.tasks[r]);
            policy.slot_energy.push_back(energy);
          }
        }
        if (policy.tasks.empty()) continue;
        // Same dedup rule as make_slot_policies: first witness orientation
        // wins among policies whose active task sets coincide.
        const bool duplicate =
            std::any_of(partition.policies.begin(), partition.policies.end(),
                        [&](const Policy& other) { return other.tasks == policy.tasks; });
        if (!duplicate) partition.policies.push_back(std::move(policy));
      }
      if (!partition.policies.empty()) {
        partition.finalize(net);
        partitions.push_back(std::move(partition));
      }
    }
  }
  return partitions;
}

}  // namespace

std::vector<PolicyPartition> build_partitions(const model::Network& net,
                                              model::SlotIndex first_slot) {
  std::vector<std::vector<model::TaskIndex>> candidates(
      static_cast<std::size_t>(net.charger_count()));
  for (model::ChargerIndex i = 0; i < net.charger_count(); ++i) {
    const auto span = net.coverable_tasks(i);
    candidates[static_cast<std::size_t>(i)].assign(span.begin(), span.end());
  }
  return build_partitions_impl(net, first_slot, candidates);
}

std::vector<PolicyPartition> build_partitions(const model::Network& net,
                                              model::SlotIndex first_slot,
                                              const std::vector<model::TaskIndex>& candidates) {
  std::vector<std::vector<model::TaskIndex>> per_charger(
      static_cast<std::size_t>(net.charger_count()));
  for (model::ChargerIndex i = 0; i < net.charger_count(); ++i) {
    for (model::TaskIndex j : candidates) {
      if (net.potential_power(i, j) > 0.0) {
        per_charger[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  return build_partitions_impl(net, first_slot, per_charger);
}

MarginalEngine::MarginalEngine(const model::Network& net, Config config,
                               std::span<const double> initial_energy)
    : net_(&net),
      config_(config),
      table_(kernels::UtilityTable::from(net)),
      // Latched once: a long-lived engine must not change evaluation path
      // mid-run under a concurrent toggle flip (results are bit-identical
      // either way, but the latch keeps the choice observable and stable).
      use_kernels_(util::kernels_enabled()) {
  if (config_.colors < 1) config_.colors = 1;
  if (config_.samples < 1) config_.samples = 1;
  if (config_.colors == 1) config_.samples = 1;  // expectation is exact
  const auto m = static_cast<std::size_t>(net.task_count());
  energy_.assign(static_cast<std::size_t>(config_.samples) * m, 0.0);
  sample_version_.assign(static_cast<std::size_t>(config_.samples) * m, 0);
  task_version_.assign(m, 0);
  if (!initial_energy.empty()) {
    for (int s = 0; s < config_.samples; ++s) {
      for (std::size_t j = 0; j < m; ++j) {
        energy_[static_cast<std::size_t>(s) * m + j] = initial_energy[j];
      }
    }
  }
}

int MarginalEngine::panel_color(std::uint64_t seed, int sample, model::ChargerIndex i,
                                model::SlotIndex k, int colors) {
  if (colors <= 1) return 0;
  std::uint64_t state = seed ^ 0xa02bdbf7bb3c0a7ULL;
  state ^= static_cast<std::uint64_t>(sample) * 0x9e3779b97f4a7c15ULL;
  state ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
  const std::uint64_t hashed = util::splitmix64(state);
  return static_cast<int>(hashed % static_cast<std::uint64_t>(colors));
}

int MarginalEngine::final_color(std::uint64_t seed, model::ChargerIndex i,
                                model::SlotIndex k, int colors) {
  if (colors <= 1) return 0;
  // Different salt than panel_color so the executed coloring is independent
  // of the estimation panel.
  std::uint64_t state = seed ^ 0x5851f42d4c957f2dULL;
  state ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
  const std::uint64_t hashed = util::splitmix64(state);
  return static_cast<int>(hashed % static_cast<std::uint64_t>(colors));
}

double MarginalEngine::gain_in_sample(int s, const kernels::RowView& rows) const {
  const auto m = static_cast<std::size_t>(net_->task_count());
  const double* energy = energy_.data() + static_cast<std::size_t>(s) * m;
  row_term_count_.fetch_add(rows.size(), std::memory_order_relaxed);
  if (use_kernels_) {
    // Compute-wide / reduce-in-order kernel; bit-identical to the reference
    // fold below (see core/kernels.hpp).
    return kernels::row_term_sum(table_, energy, rows);
  }
  double gain = 0.0;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    const auto j = static_cast<std::size_t>(rows.tasks[t]);
    const double before = energy[j];
    const double after = before + rows.delta[t];
    gain += net_->weighted_task_utility(static_cast<model::TaskIndex>(j), after) -
            net_->weighted_task_utility(static_cast<model::TaskIndex>(j), before);
  }
  return gain;
}

double MarginalEngine::marginal(model::ChargerIndex i, model::SlotIndex k,
                                const kernels::RowView& rows, int c) const {
  marginal_count_.fetch_add(1, std::memory_order_relaxed);
  double total = 0.0;
  for (int s = 0; s < config_.samples; ++s) {
    if (panel_color(config_.seed, s, i, k, config_.colors) != c) continue;
    total += gain_in_sample(s, rows);
  }
  return total / static_cast<double>(config_.samples);
}

void MarginalEngine::partition_marginals(const PolicyPartition& partition, int c,
                                         double* out) const {
  thread_local std::vector<int> colors_buf;
  colors_buf.resize(static_cast<std::size_t>(config_.samples));
  for (int s = 0; s < config_.samples; ++s) {
    colors_buf[static_cast<std::size_t>(s)] =
        panel_color(config_.seed, s, partition.charger, partition.slot, config_.colors);
  }
  partition_marginals(partition, c, colors_buf, out);
}

void MarginalEngine::partition_marginals(const PolicyPartition& partition, int c,
                                         std::span<const int> sample_colors,
                                         double* out) const {
  const std::size_t count = partition.policies.size();
  const std::size_t rows = partition.flat_tasks.size();
  if (!use_kernels_ || !partition.has_column_index() || rows == 0) {
    // Scalar reference path (and degenerate partitions): the per-policy
    // oracle loop, each call counting itself (and re-deriving its panel
    // colors — this path is not performance-relevant).
    for (std::size_t q = 0; q < count; ++q) {
      out[q] = marginal(partition.charger, partition.slot, partition.policy_rows(q), c);
    }
    return;
  }
  marginal_count_.fetch_add(count, std::memory_order_relaxed);
  for (std::size_t q = 0; q < count; ++q) out[q] = 0.0;
  const auto m = static_cast<std::size_t>(net_->task_count());
  // Resolve the matching panel samples, then price the partition's
  // deduplicated (task, delta) columns for all of them in one panel sweep.
  // Scratch is thread_local rather than a member: the engine's const oracle
  // surface is documented concurrency-safe (the parallel panel builds rely
  // on it).
  thread_local std::vector<int> matching;
  matching.clear();
  for (int s = 0; s < config_.samples; ++s) {
    if (sample_colors[static_cast<std::size_t>(s)] == c) matching.push_back(s);
  }
  if (!matching.empty()) {
    // Counter semantics match the scalar path, which prices every flat row
    // once per matching sample — the column dedup only removes redundant
    // arithmetic, not evaluations.
    row_term_count_.fetch_add(static_cast<std::uint64_t>(rows) * matching.size(),
                              std::memory_order_relaxed);
    const std::size_t cols = partition.col_task.size();
    const kernels::RowView column_rows{partition.col_task, partition.col_delta,
                                       partition.col_weight, partition.col_required};
    thread_local std::vector<double> col_terms;
    col_terms.resize(matching.size() * cols);
    kernels::row_terms_panel(table_, energy_.data(), m, matching, column_rows,
                             col_terms.data());
    // Segmented gather-fold: policy q's inner sum visits its rows in row
    // order (each row's term read through the column map — bit-identical,
    // since rows sharing a column share their inputs), and out[q]
    // accumulates inners in ascending sample order — exactly the
    // marginal()/gain_in_sample() accumulation trajectory per policy.
    const std::int32_t* offsets = partition.row_offsets.data();
    const std::int32_t* col_of = partition.flat_col.data();
    for (std::size_t i = 0; i < matching.size(); ++i) {
      const double* terms = col_terms.data() + i * cols;
      for (std::size_t q = 0; q < count; ++q) {
        double inner = 0.0;
        for (std::int32_t t = offsets[q]; t < offsets[q + 1]; ++t) {
          inner += terms[static_cast<std::size_t>(col_of[t])];
        }
        out[q] += inner;
      }
    }
  }
  for (std::size_t q = 0; q < count; ++q) {
    out[q] /= static_cast<double>(config_.samples);
  }
}

double MarginalEngine::commit(model::ChargerIndex i, model::SlotIndex k,
                              std::span<const model::TaskIndex> tasks,
                              std::span<const double> slot_energy, int c) {
  const auto m = static_cast<std::size_t>(net_->task_count());
  double total = 0.0;
  bool applied = false;
  for (int s = 0; s < config_.samples; ++s) {
    if (panel_color(config_.seed, s, i, k, config_.colors) != c) continue;
    total += gain_in_sample(s, kernels::RowView{tasks, slot_energy, {}, {}});
    double* energy = energy_.data() + static_cast<std::size_t>(s) * m;
    std::uint64_t* versions = sample_version_.data() + static_cast<std::size_t>(s) * m;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto j = static_cast<std::size_t>(tasks[t]);
      const double before = energy[j];
      const double after = before + slot_energy[t];
      // Only rows whose *utility* moved in this sample de-certify cached
      // marginals. Utility shapes are concave and non-decreasing, so
      // u(before) == u(after) with before < after means u is flat on
      // [before, inf): every other policy's term for that (task, sample) —
      // evaluated at an energy >= before — is provably unchanged, and stays
      // unchanged for the rest of the run. In practice this means commits
      // into saturated tasks dirty nothing.
      if (weighted_utility(tasks[t], after) != weighted_utility(tasks[t], before)) {
        ++versions[j];
        ++task_version_[j];
      }
      energy[j] = after;
    }
    applied = true;
  }
  if (applied) ++commit_count_;
  return total / static_cast<double>(config_.samples);
}

void MarginalEngine::commit_no_gain(model::ChargerIndex i, model::SlotIndex k,
                                    std::span<const model::TaskIndex> tasks,
                                    std::span<const double> slot_energy, int c) {
  const auto m = static_cast<std::size_t>(net_->task_count());
  bool applied = false;
  for (int s = 0; s < config_.samples; ++s) {
    if (panel_color(config_.seed, s, i, k, config_.colors) != c) continue;
    double* energy = energy_.data() + static_cast<std::size_t>(s) * m;
    std::uint64_t* versions = sample_version_.data() + static_cast<std::size_t>(s) * m;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto j = static_cast<std::size_t>(tasks[t]);
      const double before = energy[j];
      const double after = before + slot_energy[t];
      // Same utility-filtered bump rule as commit(); see the comment there.
      if (weighted_utility(tasks[t], after) != weighted_utility(tasks[t], before)) {
        ++versions[j];
        ++task_version_[j];
      }
      energy[j] = after;
    }
    applied = true;
  }
  if (applied) ++commit_count_;
}

double MarginalEngine::row_term(int s, model::TaskIndex j, double delta) const {
  row_term_count_.fetch_add(1, std::memory_order_relaxed);
  const auto m = static_cast<std::size_t>(net_->task_count());
  const double before =
      energy_[static_cast<std::size_t>(s) * m + static_cast<std::size_t>(j)];
  return weighted_utility(j, before + delta) - weighted_utility(j, before);
}

void MarginalEngine::row_terms(int s, const kernels::RowView& rows, double* out) const {
  row_term_count_.fetch_add(rows.size(), std::memory_order_relaxed);
  const auto m = static_cast<std::size_t>(net_->task_count());
  const double* energy = energy_.data() + static_cast<std::size_t>(s) * m;
  if (use_kernels_) {
    kernels::row_terms(table_, energy, rows, out);
    return;
  }
  for (std::size_t t = 0; t < rows.size(); ++t) {
    const auto j = static_cast<std::size_t>(rows.tasks[t]);
    const double before = energy[j];
    out[t] = net_->weighted_task_utility(rows.tasks[t], before + rows.delta[t]) -
             net_->weighted_task_utility(rows.tasks[t], before);
  }
}

std::uint64_t MarginalEngine::version_sum(std::span<const model::TaskIndex> tasks) const {
  std::uint64_t sum = 0;
  for (model::TaskIndex j : tasks) sum += task_version_[static_cast<std::size_t>(j)];
  return sum;
}

double MarginalEngine::expected_value() const {
  const auto m = static_cast<std::size_t>(net_->task_count());
  double total = 0.0;
  for (int s = 0; s < config_.samples; ++s) {
    const double* energy = energy_.data() + static_cast<std::size_t>(s) * m;
    for (std::size_t j = 0; j < m; ++j) {
      total += weighted_utility(static_cast<model::TaskIndex>(j), energy[j]);
    }
  }
  return total / static_cast<double>(config_.samples);
}

}  // namespace haste::core
