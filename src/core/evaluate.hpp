// Exact schedule evaluation: plays a schedule against the physical model of
// Section 3 — sector gating, power superposition, switching delay (the
// leading rho fraction of any slot whose assignment changes the orientation
// is silent), and orientation persistence for unassigned slots — and reports
// per-task harvested energy and utility.
#pragma once

#include <vector>

#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::core {

/// Outcome of playing a schedule.
///
/// On a deadline-driven instance (Network::has_deadlines()), utilities are
/// computed on *effective* energy — each slot's harvest discounted by the
/// task's tardiness factor — while task_energy keeps reporting the physical
/// (undiscounted) joules. On a deadline-free instance the two coincide.
struct EvaluationResult {
  std::vector<double> task_energy;    ///< harvested J per task (switching-aware)
  std::vector<double> task_effective_energy;  ///< deadline-discounted J per task
  std::vector<double> task_utility;   ///< unweighted U_j in [0, 1]
  double weighted_utility = 0.0;      ///< the paper's overall charging utility
  double relaxed_weighted_utility = 0.0;  ///< same schedule, rho treated as 0
  int switches = 0;                   ///< total orientation switches
};

/// Plays `schedule` on `net` from slot 0 to the horizon.
EvaluationResult evaluate_schedule(const model::Network& net,
                                   const model::Schedule& schedule);

/// Per-task *effective* harvested energy of the first `slots` slots only
/// (prefix evaluation; used by the online simulator to snapshot "energy so
/// far" before a re-plan). Switching-aware, deadline-discounted — the value
/// a re-planning MarginalEngine must be seeded with so its utilities agree
/// with the evaluator's.
std::vector<double> prefix_task_energy(const model::Network& net,
                                       const model::Schedule& schedule,
                                       model::SlotIndex slots);

}  // namespace haste::core
