// Generic submodular-maximization framework.
//
// The production schedulers use the incremental MarginalEngine; this header
// provides the *reference* machinery the test suite uses to validate them:
// a set-function interface, a slow-but-obviously-correct HASTE-R objective
// (RP2), reference locally-greedy / exhaustive maximizers over partition
// ground sets, and property checkers for monotonicity and submodularity
// (Definition 4.2 / Lemma 4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/matroid.hpp"
#include "core/objective.hpp"
#include "util/rng.hpp"

namespace haste::core {

/// A real-valued set function over a dense ground set 0..n-1.
class SetFunction {
 public:
  virtual ~SetFunction() = default;
  /// f(S); `set` holds distinct element ids, order irrelevant.
  virtual double value(std::span<const ElementId> set) const = 0;
  /// Ground set size.
  virtual std::size_t ground_size() const = 0;

  /// A stack-disciplined incremental evaluator: push/pop elements and read
  /// f(current set) without paying a from-scratch evaluation per query. pop()
  /// restores the pre-push state exactly (bit-for-bit), so probing an
  /// element and backing out is side-effect free.
  class Incremental {
   public:
    virtual ~Incremental() = default;
    virtual void push(ElementId e) = 0;  ///< add e to the current set
    virtual void pop() = 0;              ///< remove the most recently pushed element
    virtual double value() const = 0;    ///< f(current set)
  };

  /// Returns an evaluator over the initially empty set. The default
  /// evaluates from scratch on every value() call (no worse than the naive
  /// loop); objectives with incremental structure override it.
  virtual std::unique_ptr<Incremental> incremental() const;
};

/// The HASTE-R objective f(X) of RP2 computed from scratch: element ids index
/// the flattened (partition, policy) pairs of a PolicyPartition vector.
class HasteRObjective final : public SetFunction {
 public:
  HasteRObjective(const model::Network& net, std::span<const PolicyPartition> partitions);

  double value(std::span<const ElementId> set) const override;
  std::size_t ground_size() const override { return element_partition_.size(); }

  /// O(|policy tasks|) push/pop via per-task accumulated energy — the same
  /// incremental scheme as the production MarginalEngine.
  std::unique_ptr<Incremental> incremental() const override;

  /// Partition index (into the PolicyPartition vector) of an element.
  std::int32_t partition_of(ElementId e) const { return element_partition_[static_cast<std::size_t>(e)]; }

  /// The policy an element denotes.
  const Policy& policy_of(ElementId e) const;

  /// Elements grouped by partition, in partition order.
  const std::vector<std::vector<ElementId>>& elements_by_partition() const {
    return elements_;
  }

  /// The matching partition matroid (capacity 1 per partition) — Lemma 4.1.
  PartitionMatroid matroid() const;

 private:
  const model::Network* net_;
  std::span<const PolicyPartition> partitions_;
  std::vector<std::int32_t> element_partition_;
  std::vector<std::int32_t> element_policy_;
  std::vector<std::vector<ElementId>> elements_;
};

/// Reference locally-greedy: visits partitions in order, adding the element
/// with the best marginal (ties -> lowest id, skip if best marginal <= 0).
/// Returns the chosen set. This is TabularGreedy with C = 1. Oracle calls go
/// through f.incremental(), so each probe costs O(|policy tasks|) for the
/// HASTE-R objective instead of a from-scratch evaluation.
std::vector<ElementId> locally_greedy(const SetFunction& f,
                                      const std::vector<std::vector<ElementId>>& partitions);

/// Reference exhaustive maximizer over "pick at most one element per
/// partition" — exponential; tiny inputs only. Returns the best set.
/// Also driven through f.incremental(): the search tree pushes and pops
/// elements instead of re-evaluating each leaf from scratch.
std::vector<ElementId> maximize_exhaustive(const SetFunction& f,
                                           const std::vector<std::vector<ElementId>>& partitions);

/// Property check: f(A + e) >= f(A) on `trials` random (A, e) pairs.
/// Returns the largest violation found (<= tolerance means pass).
double max_monotonicity_violation(const SetFunction& f, util::Rng& rng, int trials);

/// Property check: diminishing returns f(A+e) - f(A) >= f(B+e) - f(B) for
/// random A subset-of B, e outside B. Returns the largest violation found.
double max_submodularity_violation(const SetFunction& f, util::Rng& rng, int trials);

}  // namespace haste::core
