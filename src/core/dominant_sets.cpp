#include "core/dominant_sets.hpp"

#include <algorithm>

namespace haste::core {

std::vector<DominantTaskSet> extract_dominant_sets(
    const model::Network& net, model::ChargerIndex i,
    const std::vector<model::TaskIndex>& candidates) {
  // Keep only tasks that cover the charger; remember the original ids.
  std::vector<model::TaskIndex> coverable;
  std::vector<geom::Arc> arcs;
  coverable.reserve(candidates.size());
  arcs.reserve(candidates.size());
  for (model::TaskIndex j : candidates) {
    if (net.potential_power(i, j) > 0.0) {
      coverable.push_back(j);
      arcs.push_back(net.coverage_arc(i, j));
    }
  }
  const std::vector<geom::DominantArcSet> arc_sets = geom::dominant_arc_sets(arcs);

  std::vector<DominantTaskSet> sets;
  sets.reserve(arc_sets.size());
  for (const geom::DominantArcSet& arc_set : arc_sets) {
    DominantTaskSet set;
    set.orientation = arc_set.witness;
    set.tasks.reserve(arc_set.items.size());
    for (std::size_t idx : arc_set.items) set.tasks.push_back(coverable[idx]);
    std::sort(set.tasks.begin(), set.tasks.end());
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<DominantTaskSet> extract_dominant_sets(const model::Network& net,
                                                   model::ChargerIndex i) {
  const auto span = net.coverable_tasks(i);
  return extract_dominant_sets(net, i,
                               std::vector<model::TaskIndex>(span.begin(), span.end()));
}

}  // namespace haste::core
