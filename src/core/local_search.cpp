#include "core/local_search.hpp"

#include <algorithm>
#include <vector>

namespace haste::core {

namespace {

/// Tracks per-task relaxed energy and the weighted utility total, supporting
/// incremental add/remove of policy contributions.
class ObjectiveState {
 public:
  explicit ObjectiveState(const model::Network& net)
      : net_(&net), energy_(static_cast<std::size_t>(net.task_count()), 0.0) {}

  void add(const Policy& policy, int sign) {
    for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
      const auto j = static_cast<std::size_t>(policy.tasks[t]);
      energy_[j] = std::max(0.0, energy_[j] + sign * policy.slot_energy[t]);
    }
  }

  /// Objective delta of applying `sign * policy` without committing.
  double delta(const Policy& policy, int sign) const {
    double d = 0.0;
    for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
      const auto j = static_cast<std::size_t>(policy.tasks[t]);
      const double before = energy_[j];
      const double after = std::max(0.0, before + sign * policy.slot_energy[t]);
      d += net_->weighted_task_utility(static_cast<model::TaskIndex>(j), after) -
           net_->weighted_task_utility(static_cast<model::TaskIndex>(j), before);
    }
    return d;
  }

  double total() const {
    double sum = 0.0;
    for (std::size_t j = 0; j < energy_.size(); ++j) {
      sum += net_->weighted_task_utility(static_cast<model::TaskIndex>(j), energy_[j]);
    }
    return sum;
  }

 private:
  const model::Network* net_;
  std::vector<double> energy_;
};

}  // namespace

LocalSearchResult improve_schedule(const model::Network& net,
                                   const std::vector<PolicyPartition>& partitions,
                                   const model::Schedule& schedule,
                                   const LocalSearchConfig& config) {
  // Recover the per-partition selection from the schedule by matching the
  // assigned orientation against the partition's policy witnesses.
  std::vector<int> selection(partitions.size(), -1);
  ObjectiveState state(net);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const model::SlotAssignment assigned =
        schedule.assignment(partitions[p].charger, partitions[p].slot);
    if (!assigned.has_value()) continue;
    for (std::size_t q = 0; q < partitions[p].policies.size(); ++q) {
      if (partitions[p].policies[q].orientation == *assigned) {
        selection[p] = static_cast<int>(q);
        state.add(partitions[p].policies[q], +1);
        break;
      }
    }
  }

  LocalSearchResult result;
  result.initial_relaxed_utility = state.total();

  for (int pass = 0; pass < config.max_passes; ++pass) {
    const double before_pass = state.total();
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      const int current = selection[p];
      // Remove the current choice, then pick the best replacement (possibly
      // none, possibly the same one back; ties prefer the current choice to
      // avoid churn and pointless switching).
      if (current >= 0) {
        state.add(partitions[p].policies[static_cast<std::size_t>(current)], -1);
      }
      int best = -1;
      double best_delta = config.min_gain;  // only strictly positive picks
      for (std::size_t q = 0; q < partitions[p].policies.size(); ++q) {
        const double d = state.delta(partitions[p].policies[q], +1);
        const bool better =
            d > best_delta + config.min_gain ||
            (static_cast<int>(q) == current && d >= best_delta - config.min_gain);
        if (better) {
          best = static_cast<int>(q);
          best_delta = d;
        }
      }
      if (best >= 0) {
        state.add(partitions[p].policies[static_cast<std::size_t>(best)], +1);
      }
      if (best != current) ++result.swaps;
      selection[p] = best;
    }
    ++result.passes;
    if (state.total() - before_pass <= config.min_gain) break;
  }

  result.schedule = model::Schedule(net.charger_count(), net.horizon());
  // Preserve assignments that were not part of the ground set (defensive:
  // none are produced by the library's schedulers).
  for (model::ChargerIndex i = 0; i < net.charger_count(); ++i) {
    for (model::SlotIndex k = 0; k < net.horizon(); ++k) {
      const model::SlotAssignment a = schedule.assignment(i, k);
      if (a.has_value()) result.schedule.assign(i, k, *a);
    }
  }
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (selection[p] >= 0) {
      result.schedule.assign(partitions[p].charger, partitions[p].slot,
                             partitions[p].policies[static_cast<std::size_t>(selection[p])]
                                 .orientation);
    } else {
      result.schedule.clear(partitions[p].charger, partitions[p].slot);
    }
  }
  result.relaxed_utility = state.total();
  return result;
}

}  // namespace haste::core
