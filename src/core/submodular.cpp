#include "core/submodular.hpp"

#include <algorithm>
#include <stdexcept>

namespace haste::core {

namespace {

/// Fallback incremental evaluator: keeps the element stack and evaluates
/// from scratch on every value() query — identical cost to the historical
/// call pattern, for set functions without incremental structure.
class ScratchIncremental final : public SetFunction::Incremental {
 public:
  explicit ScratchIncremental(const SetFunction& f) : f_(&f) {}

  void push(ElementId e) override { stack_.push_back(e); }
  void pop() override { stack_.pop_back(); }
  double value() const override { return f_->value(stack_); }

 private:
  const SetFunction* f_;
  std::vector<ElementId> stack_;
};

/// Incremental HASTE-R evaluator: per-task accumulated energy plus the
/// running objective value, updated in O(|policy tasks|) per push. Undo
/// records store the exact pre-push energies and value, so pop() restores
/// the previous state bit-for-bit (no floating-point drift from reversing
/// additions).
class HasteRIncremental final : public SetFunction::Incremental {
 public:
  HasteRIncremental(const model::Network& net, const HasteRObjective& f)
      : net_(&net), f_(&f), energy_(static_cast<std::size_t>(net.task_count()), 0.0) {
    // Match the from-scratch evaluation of the empty set (utilities need not
    // vanish at zero energy for every shape).
    for (std::size_t j = 0; j < energy_.size(); ++j) {
      value_ += net_->weighted_task_utility(static_cast<model::TaskIndex>(j), 0.0);
    }
  }

  void push(ElementId e) override {
    const Policy& policy = f_->policy_of(e);
    Undo undo;
    undo.value = value_;
    undo.rows.reserve(policy.tasks.size());
    for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
      const auto j = static_cast<std::size_t>(policy.tasks[t]);
      undo.rows.push_back({policy.tasks[t], energy_[j]});
      const double after = energy_[j] + policy.slot_energy[t];
      value_ += net_->weighted_task_utility(policy.tasks[t], after) -
                net_->weighted_task_utility(policy.tasks[t], energy_[j]);
      energy_[j] = after;
    }
    undo_.push_back(std::move(undo));
  }

  void pop() override {
    const Undo& undo = undo_.back();
    for (const auto& [task, previous] : undo.rows) {
      energy_[static_cast<std::size_t>(task)] = previous;
    }
    value_ = undo.value;
    undo_.pop_back();
  }

  double value() const override { return value_; }

 private:
  struct Undo {
    double value = 0.0;
    std::vector<std::pair<model::TaskIndex, double>> rows;
  };

  const model::Network* net_;
  const HasteRObjective* f_;
  std::vector<double> energy_;
  double value_ = 0.0;
  std::vector<Undo> undo_;
};

}  // namespace

std::unique_ptr<SetFunction::Incremental> SetFunction::incremental() const {
  return std::make_unique<ScratchIncremental>(*this);
}

HasteRObjective::HasteRObjective(const model::Network& net,
                                 std::span<const PolicyPartition> partitions)
    : net_(&net), partitions_(partitions) {
  elements_.resize(partitions.size());
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t q = 0; q < partitions[p].policies.size(); ++q) {
      const auto id = static_cast<ElementId>(element_partition_.size());
      element_partition_.push_back(static_cast<std::int32_t>(p));
      element_policy_.push_back(static_cast<std::int32_t>(q));
      elements_[p].push_back(id);
    }
  }
}

const Policy& HasteRObjective::policy_of(ElementId e) const {
  const auto p = static_cast<std::size_t>(element_partition_.at(static_cast<std::size_t>(e)));
  const auto q = static_cast<std::size_t>(element_policy_[static_cast<std::size_t>(e)]);
  return partitions_[p].policies[q];
}

double HasteRObjective::value(std::span<const ElementId> set) const {
  // Accumulate relaxed energy per task, then apply the utility. Elements in
  // the same partition both count (the set function is defined on the whole
  // ground set; the matroid constraint is handled by the maximizers).
  std::vector<double> energy(static_cast<std::size_t>(net_->task_count()), 0.0);
  for (ElementId e : set) {
    const Policy& policy = policy_of(e);
    for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
      energy[static_cast<std::size_t>(policy.tasks[t])] += policy.slot_energy[t];
    }
  }
  double total = 0.0;
  for (std::size_t j = 0; j < energy.size(); ++j) {
    total += net_->weighted_task_utility(static_cast<model::TaskIndex>(j), energy[j]);
  }
  return total;
}

PartitionMatroid HasteRObjective::matroid() const {
  return PartitionMatroid::unit(element_partition_);
}

std::unique_ptr<SetFunction::Incremental> HasteRObjective::incremental() const {
  return std::make_unique<HasteRIncremental>(*net_, *this);
}

std::vector<ElementId> locally_greedy(const SetFunction& f,
                                      const std::vector<std::vector<ElementId>>& partitions) {
  std::vector<ElementId> chosen;
  const std::unique_ptr<SetFunction::Incremental> inc = f.incremental();
  double current = inc->value();
  for (const auto& partition : partitions) {
    ElementId best = -1;
    double best_value = current;
    for (ElementId e : partition) {
      inc->push(e);
      const double candidate = inc->value();
      inc->pop();
      if (candidate > best_value + 1e-15) {
        best_value = candidate;
        best = e;
      }
    }
    if (best >= 0) {
      inc->push(best);
      chosen.push_back(best);
      current = best_value;
    }
  }
  return chosen;
}

std::vector<ElementId> maximize_exhaustive(const SetFunction& f,
                                           const std::vector<std::vector<ElementId>>& partitions) {
  const std::unique_ptr<SetFunction::Incremental> inc = f.incremental();
  std::vector<ElementId> best;
  double best_value = inc->value();
  std::vector<ElementId> current;

  const std::function<void(std::size_t)> recurse = [&](std::size_t p) {
    if (p == partitions.size()) {
      const double v = inc->value();
      if (v > best_value) {
        best_value = v;
        best = current;
      }
      return;
    }
    recurse(p + 1);  // skip this partition
    for (ElementId e : partitions[p]) {
      current.push_back(e);
      inc->push(e);
      recurse(p + 1);
      inc->pop();
      current.pop_back();
    }
  };
  recurse(0);
  return best;
}

namespace {

/// Draws a random subset of the ground set with inclusion probability `p`.
std::vector<ElementId> random_subset(std::size_t ground, double p, util::Rng& rng) {
  std::vector<ElementId> set;
  for (std::size_t e = 0; e < ground; ++e) {
    if (rng.uniform() < p) set.push_back(static_cast<ElementId>(e));
  }
  return set;
}

}  // namespace

double max_monotonicity_violation(const SetFunction& f, util::Rng& rng, int trials) {
  const std::size_t ground = f.ground_size();
  if (ground == 0) return 0.0;
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::vector<ElementId> a = random_subset(ground, rng.uniform(0.0, 0.8), rng);
    const auto e = static_cast<ElementId>(rng.uniform_index(ground));
    if (std::find(a.begin(), a.end(), e) != a.end()) continue;
    const double before = f.value(a);
    a.push_back(e);
    const double after = f.value(a);
    worst = std::max(worst, before - after);
  }
  return worst;
}

double max_submodularity_violation(const SetFunction& f, util::Rng& rng, int trials) {
  const std::size_t ground = f.ground_size();
  if (ground == 0) return 0.0;
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    // A subset of B: draw B, then thin it to get A.
    std::vector<ElementId> b = random_subset(ground, rng.uniform(0.2, 0.9), rng);
    std::vector<ElementId> a;
    for (ElementId e : b) {
      if (rng.uniform() < 0.5) a.push_back(e);
    }
    const auto e = static_cast<ElementId>(rng.uniform_index(ground));
    if (std::find(b.begin(), b.end(), e) != b.end()) continue;
    const double fa = f.value(a);
    const double fb = f.value(b);
    a.push_back(e);
    b.push_back(e);
    const double fae = f.value(a);
    const double fbe = f.value(b);
    worst = std::max(worst, (fbe - fb) - (fae - fa));
  }
  return worst;
}

}  // namespace haste::core
