// Cheap upper bounds on the HASTE-R optimum, valid at any scale.
//
// Exact optima (baseline/brute_force) are only tractable on the paper's
// small-scale instances; these bounds let the benches report optimality gaps
// at full scale:
//
//  * saturation bound — each task j independently harvests at most
//    sum over its active slots of sum over covering chargers of P_ij * T_s
//    (as if every charger pointed at j whenever j is active);
//  * linear policy bound — by concavity U(x) <= x / E_j, so the objective is
//    at most the sum over (charger, slot) partitions of the best *linearized*
//    policy gain, ignoring saturation entirely;
//  * combined — the minimum of the two (and of the trivial sum-of-weights
//    cap), still an upper bound.
//
// Both are loose in opposite regimes (saturation binds when tasks are easy,
// the linear bound when chargers are scarce), so the combination is usually
// informative.
#pragma once

#include "model/network.hpp"

namespace haste::core {

/// The computed bounds (weighted-utility units).
struct UpperBounds {
  double saturation_bound = 0.0;
  double linear_policy_bound = 0.0;
  double combined = 0.0;  ///< min of the above and the sum of weights
};

/// Computes the bounds for a network (relaxed setting, rho = 0).
UpperBounds relaxed_upper_bounds(const model::Network& net);

}  // namespace haste::core
