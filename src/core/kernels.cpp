#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "model/utility.hpp"

namespace haste::core::kernels {

namespace {

// Shape ops, templated so row_terms dispatches on the shape kind once per
// batch instead of once per row. Each operator() is the exact floating-point
// expression of the corresponding UtilityShape::value — same operations,
// same special-case ordering — which is what keeps kernel marginals
// bit-identical to the scalar path. Do not "simplify": e.g. folding Sqrt's
// r <= 0 guard into std::min would turn sqrt(negative) into NaN and
// std::min(1.0, NaN) into 1.0, silently changing results for depleted rows.

struct LinearShapeOp {
  double operator()(double r) const { return std::clamp(r, 0.0, 1.0); }
};

struct SqrtShapeOp {
  double operator()(double r) const {
    if (r <= 0.0) return 0.0;
    return std::min(1.0, std::sqrt(r));
  }
};

struct LogShapeOp {
  double k;
  double norm;
  double operator()(double r) const {
    if (r <= 0.0) return 0.0;
    if (r >= 1.0) return 1.0;
    return std::log1p(k * r) / norm;
  }
};

// Virtual-dispatch fallback for shapes the table cannot describe (kCustom).
struct CustomShapeOp {
  const model::UtilityShape* shape;
  double operator()(double r) const { return shape->value(r); }
};

// The per-row delta term: w * shape((e + d) / E) - w * shape(e / E). The
// two weighted utilities are formed exactly as Network::weighted_task_utility
// does (weight * shape(ratio)), subtracted in the scalar engine's order.
template <typename ShapeOp>
inline double term_for(const ShapeOp& op, double weight, double required,
                       double energy, double delta) {
  const double before = weight * op(energy / required);
  const double after = weight * op((energy + delta) / required);
  return after - before;
}

template <typename ShapeOp>
void row_terms_impl(const ShapeOp& op, const UtilityTable& table,
                    const double* energy, const RowView& rows, double* out) {
  const std::size_t n = rows.size();
  const model::TaskIndex* tasks = rows.tasks.data();
  const double* delta = rows.delta.data();
  if (!rows.weight.empty()) {
    // Finalized CSR rows carry their own weight/required columns: the loop
    // body is one indexed gather (energy) plus contiguous loads, which the
    // compiler can unroll and vectorize around the division.
    const double* weight = rows.weight.data();
    const double* required = rows.required.data();
    for (std::size_t t = 0; t < n; ++t) {
      out[t] = term_for(op, weight[t], required[t],
                        energy[static_cast<std::size_t>(tasks[t])], delta[t]);
    }
  } else {
    const double* tw = table.weight.data();
    const double* tr = table.required.data();
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t j = static_cast<std::size_t>(tasks[t]);
      out[t] = term_for(op, tw[j], tr[j], energy[j], delta[t]);
    }
  }
}

template <typename ShapeOp>
void row_terms_panel_impl(const ShapeOp& op, const UtilityTable& table,
                          const double* energy, std::size_t stride,
                          std::span<const int> samples, const RowView& rows,
                          double* out) {
  const std::size_t n = rows.size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    row_terms_impl(op, table,
                   energy + static_cast<std::size_t>(samples[i]) * stride, rows,
                   out + i * n);
  }
}

}  // namespace

UtilityTable UtilityTable::from(const model::Network& net) {
  UtilityTable table;
  const model::UtilityShape& shape = net.utility_shape();
  table.kind = shape.kind();
  table.shape = &shape;
  if (table.kind == model::UtilityShapeKind::kLog) {
    const auto& log_shape = static_cast<const model::LogBoundedShape&>(shape);
    table.log_k = log_shape.curvature();
    table.log_norm = log_shape.norm();
  }
  const auto& tasks = net.tasks();
  table.weight.reserve(tasks.size());
  table.required.reserve(tasks.size());
  for (const auto& task : tasks) {
    table.weight.push_back(task.weight);
    table.required.push_back(task.required_energy);
  }
  table.deadline_policy = net.deadline_policy();
  table.has_deadlines = net.has_deadlines();
  if (table.has_deadlines) {
    table.deadline.reserve(tasks.size());
    table.infeasible.reserve(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      table.deadline.push_back(tasks[j].deadline_slot);
      table.infeasible.push_back(
          net.deadline_infeasible(static_cast<model::TaskIndex>(j)) ? 1 : 0);
    }
  }
  return table;
}

double UtilityTable::weighted_utility(model::TaskIndex j, double x) const {
  const std::size_t idx = static_cast<std::size_t>(j);
  const double r = x / required[idx];
  double value;
  switch (kind) {
    case model::UtilityShapeKind::kLinear:
      value = LinearShapeOp{}(r);
      break;
    case model::UtilityShapeKind::kSqrt:
      value = SqrtShapeOp{}(r);
      break;
    case model::UtilityShapeKind::kLog:
      value = LogShapeOp{log_k, log_norm}(r);
      break;
    default:
      value = shape->value(r);
      break;
  }
  return weight[idx] * value;
}

void row_terms(const UtilityTable& table, const double* energy, const RowView& rows,
               double* out) {
  switch (table.kind) {
    case model::UtilityShapeKind::kLinear:
      row_terms_impl(LinearShapeOp{}, table, energy, rows, out);
      break;
    case model::UtilityShapeKind::kSqrt:
      row_terms_impl(SqrtShapeOp{}, table, energy, rows, out);
      break;
    case model::UtilityShapeKind::kLog:
      row_terms_impl(LogShapeOp{table.log_k, table.log_norm}, table, energy, rows,
                     out);
      break;
    default:
      row_terms_impl(CustomShapeOp{table.shape}, table, energy, rows, out);
      break;
  }
}

void row_terms_panel(const UtilityTable& table, const double* energy,
                     std::size_t stride, std::span<const int> samples,
                     const RowView& rows, double* out) {
  switch (table.kind) {
    case model::UtilityShapeKind::kLinear:
      row_terms_panel_impl(LinearShapeOp{}, table, energy, stride, samples, rows, out);
      break;
    case model::UtilityShapeKind::kSqrt:
      row_terms_panel_impl(SqrtShapeOp{}, table, energy, stride, samples, rows, out);
      break;
    case model::UtilityShapeKind::kLog:
      row_terms_panel_impl(LogShapeOp{table.log_k, table.log_norm}, table, energy,
                           stride, samples, rows, out);
      break;
    default:
      row_terms_panel_impl(CustomShapeOp{table.shape}, table, energy, stride,
                           samples, rows, out);
      break;
  }
}

void tardiness_factors(const UtilityTable& table,
                       std::span<const model::TaskIndex> tasks, model::SlotIndex k,
                       double* out) {
  const std::size_t n = tasks.size();
  if (!table.has_deadlines) {
    for (std::size_t t = 0; t < n; ++t) out[t] = 1.0;
    return;
  }
  const model::SlotIndex* deadline = table.deadline.data();
  const std::uint8_t* infeasible = table.infeasible.data();
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t j = static_cast<std::size_t>(tasks[t]);
    out[t] = infeasible[j] != 0 ? 0.0
                                : table.deadline_policy.slot_factor(k, deadline[j]);
  }
}

double row_term_sum(const UtilityTable& table, const double* energy,
                    const RowView& rows) {
  // Compute wide, reduce in order: terms are evaluated block-wise through the
  // vectorizable kernel, then accumulated strictly sequentially so the fold
  // matches the scalar engine's left-to-right summation bit for bit. The
  // block buffer lives on the stack because marginals run concurrently from
  // util::parallel_for — the engine must stay free of shared scratch.
  constexpr std::size_t kBlock = 128;
  double terms[kBlock];
  double sum = 0.0;
  const std::size_t n = rows.size();
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t count = std::min(kBlock, n - base);
    row_terms(table, energy, rows.subview(base, count), terms);
    for (std::size_t t = 0; t < count; ++t) sum += terms[t];
  }
  return sum;
}

}  // namespace haste::core::kernels
