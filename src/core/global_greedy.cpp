#include "core/global_greedy.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace haste::core {

namespace {

/// One element of the flattened ground set: policy `policy` of partition
/// `partition`. Element ids are assigned in (partition, policy) lexicographic
/// order, so comparing ids reproduces the historical tie order.
struct Element {
  std::int32_t partition;
  std::int32_t policy;
};

/// Heap entry: a cached gain for one element. `stamp` is the engine's commit
/// count when the gain was evaluated; whether the cached value is still
/// trustworthy depends on the evaluation mode (see header). `urgency` is the
/// element's earliest task deadline (Task::kNoDeadline without deadlines), a
/// static per-element property used only to break exact gain ties.
struct HeapEntry {
  double bound;
  model::SlotIndex urgency;
  std::int32_t element;
  std::uint64_t stamp;

  bool operator<(const HeapEntry& other) const {
    if (bound != other.bound) return bound < other.bound;
    // EDF-biased tie order: among equal gains, the element serving the most
    // urgent deadline wins. On a deadline-free instance every urgency is the
    // kNoDeadline sentinel, so this clause is inert and the historical order
    // is preserved.
    if (urgency != other.urgency) return urgency > other.urgency;
    // Deterministic final tie order: the lower element id — i.e. the lower
    // (partition, policy) pair — wins.
    return element > other.element;
  }
};

}  // namespace

GlobalGreedyResult schedule_global_greedy_over(
    const model::Network& net, const std::vector<PolicyPartition>& partitions,
    const GlobalGreedyConfig& config, std::span<const double> initial_energy) {
  MarginalEngine engine(net, MarginalEngine::Config{1, 1, 1}, initial_energy);
  GlobalGreedyResult result;
  result.schedule = model::Schedule(net.charger_count(), net.horizon());

  // Flatten the ground set.
  std::vector<Element> elements;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t q = 0; q < partitions[p].policies.size(); ++q) {
      elements.push_back(
          Element{static_cast<std::int32_t>(p), static_cast<std::int32_t>(q)});
    }
  }

  // Per-element urgency for the EDF tie-break: the earliest deadline among
  // the policy's tasks. Static (deadlines never move), so computed once.
  std::vector<model::SlotIndex> urgency(elements.size(), model::Task::kNoDeadline);
  if (net.has_deadlines()) {
    for (std::size_t e = 0; e < elements.size(); ++e) {
      const Element& el = elements[e];
      const PolicyPartition& partition =
          partitions[static_cast<std::size_t>(el.partition)];
      for (model::TaskIndex j : partition.policy_tasks(static_cast<std::size_t>(el.policy))) {
        urgency[e] = std::min(urgency[e],
                              net.tasks()[static_cast<std::size_t>(j)].deadline_slot);
      }
    }
  }

  const auto evaluate = [&](std::int32_t e) {
    const Element& el = elements[static_cast<std::size_t>(e)];
    const PolicyPartition& partition = partitions[static_cast<std::size_t>(el.partition)];
    const auto q = static_cast<std::size_t>(el.policy);
    return engine.marginal(partition.charger, partition.slot, partition.policy_rows(q), 0);
  };

  // Incremental mode: a per-row term cache. term_cache/term_version hold, per
  // (element, row), the row's utility delta and the task version it was
  // computed at; a refresh recomputes only the rows whose task version moved
  // and re-sums the chain in row order, which reproduces a full evaluation
  // bit for bit (the engine runs one sample here, so evaluation order is
  // row-major in both paths). The version stamps double as the staleness
  // test — the per-task counters make any inverted task -> elements index
  // unnecessary, and with it the per-commit fan-out over every element that
  // shares a task.
  std::vector<std::size_t> term_offset;
  std::vector<double> term_cache;
  std::vector<std::uint64_t> term_version;
  constexpr std::uint64_t kNeverEvaluated = ~std::uint64_t{0};
  if (config.mode == GreedyMode::kIncremental) {
    term_offset.assign(elements.size() + 1, 0);
    for (std::size_t e = 0; e < elements.size(); ++e) {
      const Element& el = elements[e];
      const PolicyPartition& partition =
          partitions[static_cast<std::size_t>(el.partition)];
      term_offset[e + 1] =
          term_offset[e] +
          partition.policy_tasks(static_cast<std::size_t>(el.policy)).size();
    }
    term_cache.assign(term_offset.back(), 0.0);
    term_version.assign(term_offset.back(), kNeverEvaluated);
  }

  // Refresh an element's cached gain, recomputing only the rows whose task
  // version moved; returns the exact current gain. `corrections` (optional)
  // accumulates the number of rows recomputed.
  const auto refresh = [&](std::int32_t e, std::uint64_t* corrections) {
    const Element& el = elements[static_cast<std::size_t>(e)];
    const PolicyPartition& partition = partitions[static_cast<std::size_t>(el.partition)];
    const auto q = static_cast<std::size_t>(el.policy);
    const auto tasks = partition.policy_tasks(q);
    const auto slot_energy = partition.policy_energy(q);
    double* terms = term_cache.data() + term_offset[static_cast<std::size_t>(e)];
    std::uint64_t* versions =
        term_version.data() + term_offset[static_cast<std::size_t>(e)];
    double gain = 0.0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const std::uint64_t version = engine.task_version(tasks[t]);
      if (versions[t] != version) {
        terms[t] = engine.row_term(0, tasks[t], slot_energy[t]);
        versions[t] = version;
        if (corrections != nullptr) ++*corrections;
      }
      gain += terms[t];
    }
    return gain;
  };

  // Initial heap build: before the first commit every marginal is independent
  // of the others, so evaluate them in parallel and heapify sequentially
  // (the comparator is a strict total order, so pop order is deterministic
  // regardless of construction order). In incremental mode every row is
  // stale, so the term cache is filled with one batched pricing call per
  // element instead of refresh()'s per-row version-check-and-recompute —
  // same terms, same ordered fold, a fraction of the oracle round-trips.
  std::vector<double> initial_gain(elements.size());
  util::parallel_for(elements.size(), [&](std::size_t e) {
    if (config.mode == GreedyMode::kIncremental) {
      const Element& el = elements[e];
      const PolicyPartition& partition =
          partitions[static_cast<std::size_t>(el.partition)];
      const auto rows = partition.policy_rows(static_cast<std::size_t>(el.policy));
      double* terms = term_cache.data() + term_offset[e];
      std::uint64_t* versions = term_version.data() + term_offset[e];
      engine.row_terms(0, rows, terms);
      double gain = 0.0;
      for (std::size_t t = 0; t < rows.size(); ++t) {
        versions[t] = engine.task_version(rows.tasks[t]);
        gain += terms[t];
      }
      initial_gain[e] = gain;
    } else {
      initial_gain[e] = evaluate(static_cast<std::int32_t>(e));
    }
  });
  result.evaluations += elements.size();

  std::priority_queue<HeapEntry> heap;
  for (std::size_t e = 0; e < elements.size(); ++e) {
    heap.push(HeapEntry{initial_gain[e], urgency[e], static_cast<std::int32_t>(e), 0});
  }

  std::vector<bool> partition_filled(partitions.size(), false);
  std::uint64_t commit_stamp = 0;

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    const Element& el = elements[static_cast<std::size_t>(top.element)];
    if (partition_filled[static_cast<std::size_t>(el.partition)]) continue;
    if (top.bound <= 0.0) break;  // nothing positive remains (bounds only shrink)

    switch (config.mode) {
      case GreedyMode::kIncremental: {
        // Certify the popped bound against the per-row version stamps:
        // refresh recomputes exactly the rows whose task moved and returns
        // the exact current gain. An unchanged gain means the entry was
        // already exact and maximal — commit with zero re-evaluation. (A
        // changed-but-equal gain commits too: exact and equal to the heap
        // max is argmax regardless of which rows moved.)
        const double fresh = refresh(top.element, &result.row_corrections);
        if (fresh == top.bound) break;
        top.bound = fresh;
        top.stamp = commit_stamp;
        if (fresh <= 0.0) continue;
        // Nothing commits between a re-queue and the next pop, so if the
        // refreshed entry still strictly beats the new heap top (same
        // comparator, ids break ties) it would pop straight back — commit
        // now and skip the round trip.
        if (!heap.empty() && !(heap.top() < top)) {
          heap.push(top);
          continue;
        }
        break;
      }
      case GreedyMode::kLazy:
        // Stale epoch: refresh and reinsert. By submodularity the fresh value
        // is at most the stale bound, so the heap order stays sound.
        if (top.stamp != commit_stamp) {
          ++result.evaluations;
          top.bound = evaluate(top.element);
          top.stamp = commit_stamp;
          if (top.bound > 0.0) heap.push(top);
          continue;
        }
        break;
      case GreedyMode::kEager: {
        // Always re-evaluate before trusting the value.
        ++result.evaluations;
        const double fresh = evaluate(top.element);
        if (fresh + 1e-15 < top.bound) {
          top.bound = fresh;
          if (fresh > 0.0) heap.push(top);
          continue;
        }
        top.bound = fresh;
        if (top.bound <= 0.0) continue;
        break;
      }
    }

    const PolicyPartition& partition = partitions[static_cast<std::size_t>(el.partition)];
    const auto q = static_cast<std::size_t>(el.policy);
    engine.commit(partition.charger, partition.slot, partition.policy_tasks(q),
                  partition.policy_energy(q), 0);
    result.schedule.assign(partition.charger, partition.slot,
                           partition.policies[q].orientation);
    partition_filled[static_cast<std::size_t>(el.partition)] = true;
    ++commit_stamp;
  }

  result.planned_relaxed_utility = engine.expected_value();
  // Same registry mirror as the offline scheduler: greedy's row-eval effort
  // was previously invisible to profiles unless the caller plumbed
  // GlobalGreedyResult through by hand.
  const MarginalEngine::Stats stats = engine.stats();
  HASTE_OBS_COUNTER_ADD("greedy.row_evals", stats.row_terms);
  HASTE_OBS_COUNTER_ADD("greedy.marginal_evals", stats.marginals);
  HASTE_OBS_COUNTER_ADD("greedy.commits", stats.commits);
  HASTE_OBS_COUNTER_ADD("greedy.row_corrections", result.row_corrections);
  HASTE_OBS_COUNTER_ADD("greedy.schedules", 1);
  return result;
}

GlobalGreedyResult schedule_global_greedy(const model::Network& net,
                                          const GlobalGreedyConfig& config) {
  return schedule_global_greedy_over(net, build_partitions(net), config, {});
}

}  // namespace haste::core
