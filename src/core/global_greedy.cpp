#include "core/global_greedy.hpp"

#include <queue>
#include <vector>

namespace haste::core {

namespace {

/// Heap entry: a cached (possibly stale) upper bound on an element's gain.
struct HeapEntry {
  double bound;
  std::int32_t partition;
  std::int32_t policy;
  std::uint64_t epoch;  ///< engine state when `bound` was computed

  bool operator<(const HeapEntry& other) const {
    if (bound != other.bound) return bound < other.bound;
    // Deterministic tie order: lower (partition, policy) wins.
    if (partition != other.partition) return partition > other.partition;
    return policy > other.policy;
  }
};

}  // namespace

GlobalGreedyResult schedule_global_greedy_over(
    const model::Network& net, const std::vector<PolicyPartition>& partitions,
    const GlobalGreedyConfig& config, std::span<const double> initial_energy) {
  MarginalEngine engine(net, MarginalEngine::Config{1, 1, 1}, initial_energy);
  GlobalGreedyResult result;
  result.schedule = model::Schedule(net.charger_count(), net.horizon());

  std::vector<bool> partition_filled(partitions.size(), false);
  std::uint64_t epoch = 0;

  const auto evaluate = [&](std::int32_t p, std::int32_t q) {
    ++result.evaluations;
    const PolicyPartition& partition = partitions[static_cast<std::size_t>(p)];
    return engine.marginal(partition.charger, partition.slot,
                           partition.policies[static_cast<std::size_t>(q)], 0);
  };

  std::priority_queue<HeapEntry> heap;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t q = 0; q < partitions[p].policies.size(); ++q) {
      heap.push(HeapEntry{evaluate(static_cast<std::int32_t>(p), static_cast<std::int32_t>(q)),
                          static_cast<std::int32_t>(p), static_cast<std::int32_t>(q), epoch});
    }
  }

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (partition_filled[static_cast<std::size_t>(top.partition)]) continue;
    if (top.bound <= 0.0) break;  // nothing positive remains (bounds only shrink)

    if (config.lazy && top.epoch != epoch) {
      // Stale: refresh and reinsert. By submodularity the fresh value is at
      // most the stale bound, so the heap order stays sound.
      top.bound = evaluate(top.partition, top.policy);
      top.epoch = epoch;
      if (top.bound > 0.0) heap.push(top);
      continue;
    }
    if (!config.lazy) {
      // Eager mode: always re-evaluate before trusting the value.
      const double fresh = evaluate(top.partition, top.policy);
      if (fresh + 1e-15 < top.bound) {
        top.bound = fresh;
        if (fresh > 0.0) heap.push(top);
        continue;
      }
      top.bound = fresh;
      if (top.bound <= 0.0) continue;
    }

    const PolicyPartition& partition = partitions[static_cast<std::size_t>(top.partition)];
    const Policy& policy = partition.policies[static_cast<std::size_t>(top.policy)];
    engine.commit(partition.charger, partition.slot, policy, 0);
    result.schedule.assign(partition.charger, partition.slot, policy.orientation);
    partition_filled[static_cast<std::size_t>(top.partition)] = true;
    ++epoch;
  }

  result.planned_relaxed_utility = engine.expected_value();
  return result;
}

GlobalGreedyResult schedule_global_greedy(const model::Network& net,
                                          const GlobalGreedyConfig& config) {
  return schedule_global_greedy_over(net, build_partitions(net), config, {});
}

}  // namespace haste::core
