#include "core/matroid.hpp"

#include <algorithm>
#include <stdexcept>

namespace haste::core {

PartitionMatroid::PartitionMatroid(std::vector<std::int32_t> partition_of,
                                   std::vector<std::int32_t> capacities)
    : partition_of_(std::move(partition_of)), capacities_(std::move(capacities)) {
  partition_sizes_.assign(capacities_.size(), 0);
  for (std::int32_t p : partition_of_) {
    if (p < 0 || static_cast<std::size_t>(p) >= capacities_.size()) {
      throw std::invalid_argument("PartitionMatroid: partition id out of range");
    }
    ++partition_sizes_[static_cast<std::size_t>(p)];
  }
  for (std::int32_t c : capacities_) {
    if (c <= 0) throw std::invalid_argument("PartitionMatroid: capacities must be positive");
  }
}

PartitionMatroid PartitionMatroid::unit(std::vector<std::int32_t> partition_of) {
  std::int32_t max_partition = -1;
  for (std::int32_t p : partition_of) max_partition = std::max(max_partition, p);
  return PartitionMatroid(std::move(partition_of),
                          std::vector<std::int32_t>(static_cast<std::size_t>(max_partition + 1), 1));
}

std::int32_t PartitionMatroid::partition_of(ElementId e) const {
  return partition_of_.at(static_cast<std::size_t>(e));
}

std::int32_t PartitionMatroid::capacity(std::int32_t partition) const {
  return capacities_.at(static_cast<std::size_t>(partition));
}

bool PartitionMatroid::is_independent(std::span<const ElementId> set) const {
  std::vector<std::int32_t> used(capacities_.size(), 0);
  for (ElementId e : set) {
    const std::int32_t p = partition_of(e);
    if (++used[static_cast<std::size_t>(p)] > capacities_[static_cast<std::size_t>(p)]) {
      return false;
    }
  }
  return true;
}

bool PartitionMatroid::can_extend(std::span<const ElementId> set, ElementId e) const {
  const std::int32_t p = partition_of(e);
  std::int32_t used = 0;
  for (ElementId existing : set) {
    if (existing == e) return false;
    if (partition_of(existing) == p) ++used;
  }
  return used < capacities_[static_cast<std::size_t>(p)];
}

std::size_t PartitionMatroid::rank() const {
  std::size_t rank = 0;
  for (std::size_t p = 0; p < capacities_.size(); ++p) {
    rank += static_cast<std::size_t>(std::min(capacities_[p], partition_sizes_[p]));
  }
  return rank;
}

}  // namespace haste::core
