// Centralized offline scheduler — Algorithm 2 of the paper (TabularGreedy
// tailored to HASTE).
//
// For each color c in [C] and each (charger, slot) partition in slot-major
// order, greedily add the S-C tuple maximizing the expected sampled utility;
// finally draw one color per partition and execute the matching selections.
// C = 1 is exactly the locally greedy algorithm (1/2 approximation of
// HASTE-R); C -> infinity approaches 1 - 1/e; switching delay costs at most a
// (1 - rho) factor (Theorem 5.1).
#pragma once

#include <cstdint>

#include "core/objective.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::core {

/// Tuning knobs of the offline scheduler.
struct OfflineConfig {
  int colors = 4;              ///< C; 1 = plain locally greedy
  int samples = 16;            ///< color-panel size for estimating F(Q)
  std::uint64_t seed = 1;      ///< seeds the color panel and final sampling
  bool switch_avoiding_tiebreak = true;  ///< prefer keeping yesterday's angle on ties
  bool commit_zero_marginal = false;     ///< add argmax tuples even at zero gain
                                         ///< (pure TabularGreedy; causes useless switches)
  /// kIncremental (default) keeps a per-(row, sample) term cache refreshed
  /// lazily via the engine's per-(task, sample) version counters; kRebuild
  /// re-evaluates every policy from scratch (the reference for differential
  /// tests). Both produce bit-identical schedules.
  TabularMode mode = TabularMode::kIncremental;
};

/// Result of the offline scheduler: the schedule plus the planner's internal
/// estimate of the relaxed objective (useful for diagnostics).
struct OfflineResult {
  model::Schedule schedule;
  double planned_relaxed_utility = 0.0;  ///< F(Q) estimate after the greedy
  /// Engine effort counters for the run (see MarginalEngine::Stats): the
  /// per-(row, sample) utility-delta evaluations and the full oracle calls.
  /// kIncremental only pays row evaluations (one per row at build time plus
  /// the dirtied rows); kRebuild pays one oracle call per (policy, color).
  std::uint64_t row_evaluations = 0;
  std::uint64_t marginal_evaluations = 0;
};

/// Runs Algorithm 2 on the full horizon.
OfflineResult schedule_offline(const model::Network& net, const OfflineConfig& config = {});

/// Runs Algorithm 2 over a precomputed ground set (the online scheduler
/// reuses this for its "what would the centralized planner do" reference),
/// with per-task initial energies for re-planning. `initial_energy` may be
/// empty (all zeros). The schedule returned covers [0, net.horizon()); only
/// slots present in `partitions` receive assignments.
OfflineResult schedule_offline_over(const model::Network& net,
                                    const std::vector<PolicyPartition>& partitions,
                                    const OfflineConfig& config,
                                    std::span<const double> initial_energy);

}  // namespace haste::core
