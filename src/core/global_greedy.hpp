// Global (matroid) greedy with lazy evaluation — an alternative offline
// scheduler to Algorithm 2's locally greedy core.
//
// Instead of visiting (charger, slot) partitions in a fixed order, global
// greedy repeatedly adds the element with the best marginal gain over the
// *whole* remaining ground set, until no partition admits a positive gain.
// For monotone submodular objectives under a matroid constraint this also
// carries the classical 1/2 guarantee, and in practice it is slightly
// stronger than locally greedy because early high-value picks steer later
// ones. The price is bookkeeping: a lazy priority queue (Minoux's
// accelerated greedy) keeps it near the locally-greedy cost — stale upper
// bounds are re-evaluated only when they reach the top, which submodularity
// (marginals only shrink) makes sound.
#pragma once

#include "core/objective.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::core {

/// Tuning knobs of the global greedy scheduler (single color / C = 1).
struct GlobalGreedyConfig {
  bool lazy = true;  ///< lazy (accelerated) evaluation; false = eager rescan
};

/// Result: schedule plus the achieved relaxed objective.
struct GlobalGreedyResult {
  model::Schedule schedule;
  double planned_relaxed_utility = 0.0;
  std::uint64_t evaluations = 0;  ///< marginal evaluations performed
};

/// Runs global greedy over the full horizon.
GlobalGreedyResult schedule_global_greedy(const model::Network& net,
                                          const GlobalGreedyConfig& config = {});

/// Runs global greedy over a precomputed ground set with initial energies.
GlobalGreedyResult schedule_global_greedy_over(
    const model::Network& net, const std::vector<PolicyPartition>& partitions,
    const GlobalGreedyConfig& config, std::span<const double> initial_energy);

}  // namespace haste::core
