// Global (matroid) greedy — an alternative offline scheduler to Algorithm
// 2's locally greedy core.
//
// Instead of visiting (charger, slot) partitions in a fixed order, global
// greedy repeatedly adds the element with the best marginal gain over the
// *whole* remaining ground set, until no partition admits a positive gain.
// For monotone submodular objectives under a matroid constraint this also
// carries the classical 1/2 guarantee, and in practice it is slightly
// stronger than locally greedy because early high-value picks steer later
// ones.
//
// Three evaluation strategies, cheapest first:
//
//  * kIncremental (default) — task-level dirty tracking with per-row term
//    caching. The engine bumps a version counter per task on every
//    utility-changing commit; a heap entry whose policy's tasks are all
//    untouched since its evaluation holds an EXACT gain (a marginal depends
//    on engine state only through those tasks' utilities) and commits with
//    zero re-evaluation. Staleness is detected by scanning the policy's task
//    versions at pop time, which costs one pass over the rows but avoids any
//    per-commit fan-out over the elements sharing a task. A dirty entry is
//    not re-evaluated either: each element caches its per-row utility terms with
//    the task version they were computed at, so a refresh recomputes only
//    the rows whose task actually moved and re-sums the row chain in row
//    order — bit-identical to a full evaluation, at a fraction of the work.
//    After the initial heap build the marginal oracle is never called again;
//    `evaluations` stays at the ground-set size and the partial work is
//    reported as `row_corrections`.
//  * kLazy — Minoux's accelerated greedy: one global epoch; every popped
//    entry from an older epoch is re-evaluated, which submodularity
//    (marginals only shrink) makes sound but is pessimistic when the commit
//    touched disjoint tasks.
//  * kEager — re-evaluates every popped entry; the reference for the other
//    two and the differential tests.
//
// Incremental and lazy return bit-identical schedules (eager matches too,
// except that it may resolve equal-gain ties differently: it commits a
// popped entry whose fresh gain is within 1e-15 of its cached bound instead
// of re-queueing it). Evaluation counts are ordered incremental <= lazy <=
// eager. The initial heap build is evaluated in parallel (all marginals are
// independent before the first commit).
//
// On deadline-driven instances (Network::has_deadlines()) exact gain ties
// break EDF-first: among equal marginals, the element whose policy serves
// the earliest task deadline commits first. Deadline-free instances keep the
// historical lower-element-id tie order (the urgency key is the kNoDeadline
// sentinel everywhere, so the clause is inert).
#pragma once

#include "core/objective.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::core {

/// Marginal-evaluation strategy of the global greedy scheduler.
enum class GreedyMode {
  kEager,        ///< re-evaluate every popped entry
  kLazy,         ///< global-epoch lazy evaluation (Minoux)
  kIncremental,  ///< per-task version tracking; exact cached gains
};

/// Tuning knobs of the global greedy scheduler (single color / C = 1).
struct GlobalGreedyConfig {
  GreedyMode mode = GreedyMode::kIncremental;
};

/// Result: schedule plus the achieved relaxed objective.
struct GlobalGreedyResult {
  model::Schedule schedule;
  double planned_relaxed_utility = 0.0;
  std::uint64_t evaluations = 0;  ///< full marginal (oracle) evaluations
  /// Individual policy rows recomputed by kIncremental's partial refreshes;
  /// the other modes always run full evaluations and leave this at 0.
  std::uint64_t row_corrections = 0;
};

/// Runs global greedy over the full horizon.
GlobalGreedyResult schedule_global_greedy(const model::Network& net,
                                          const GlobalGreedyConfig& config = {});

/// Runs global greedy over a precomputed ground set with initial energies.
GlobalGreedyResult schedule_global_greedy_over(
    const model::Network& net, const std::vector<PolicyPartition>& partitions,
    const GlobalGreedyConfig& config, std::span<const double> initial_energy);

}  // namespace haste::core
