// Data-oriented kernels for the marginal-engine hot path.
//
// BENCH_micro shows row evaluation — the per-(row, sample) utility delta
// summed over a policy's CSR rows — is the cost driver of both schedulers at
// every instance scale. The scalar path pays, per row, two virtual
// UtilityShape::value dispatches, two bounds-checked Task loads, and a
// double-indirect weight/required fetch. This module restructures that work
// as SoA:
//
//  * UtilityTable — the network's per-task utility columns (weight, required
//    energy) plus the shape id, so a weighted utility is a division, a
//    shape-specific clamp, and a multiply on contiguous arrays.
//  * RowView — one batch of policy rows in SoA form: parallel (task, delta)
//    columns, optionally extended with per-row (weight, required) columns
//    gathered once at PolicyPartition::finalize so the hot loop performs a
//    single indexed gather (the current energy) instead of three.
//  * row_terms / row_term_sum — the batched alpha/(d+beta)^2-fed power-law
//    utility-delta kernel: evaluate every row of a policy (or every column
//    of a partition cache) in one flat, branch-light loop the compiler can
//    auto-vectorize, then fold in row order.
//
// Bit-identity contract: every kernel performs, per element, exactly the
// floating-point operations of the scalar reference in the same order
//
//   w * shape((e + delta) / E) - w * shape(e / E)
//
// and row_term_sum accumulates terms strictly in row order (terms are
// *computed* in blocks, but *summed* sequentially), so a kernel-path marginal
// equals the scalar-path marginal bit for bit. That is the invariant every
// differential suite enforces, and it is what lets schedules stay identical
// with the kernels on or off (util::kernels_enabled()).
#pragma once

#include <span>
#include <vector>

#include "model/network.hpp"

namespace haste::core::kernels {

/// SoA view of a network's per-task utility parameters.
struct UtilityTable {
  model::UtilityShapeKind kind = model::UtilityShapeKind::kCustom;
  double log_k = 0.0;    ///< LogBoundedShape curvature (kind == kLog)
  double log_norm = 1.0; ///< LogBoundedShape normalization (kind == kLog)
  std::vector<double> weight;    ///< per task: utility weight
  std::vector<double> required;  ///< per task: required energy E_j
  const model::UtilityShape* shape = nullptr;  ///< fallback for kCustom

  // Deadline columns (scenario diversity: deadline-driven tasks). Rows are
  // discounted at partition-construction time, so the marginal kernels above
  // never touch these; they exist so batch builders can price a whole row
  // batch's tardiness factors in one flat sweep (tardiness_factors below).
  model::DeadlinePolicy deadline_policy;
  bool has_deadlines = false;                ///< Network::has_deadlines()
  std::vector<model::SlotIndex> deadline;    ///< per task; kNoDeadline if free
  std::vector<std::uint8_t> infeasible;      ///< per task: hard-mode pruned

  /// Builds the columns from the network (one gather per task).
  static UtilityTable from(const model::Network& net);

  /// True when the shape is a built-in and rows evaluate without virtual
  /// dispatch.
  bool fast() const { return kind != model::UtilityShapeKind::kCustom; }

  /// Weighted utility of task `j` at energy `x`; bit-identical to
  /// Network::weighted_task_utility(j, x).
  double weighted_utility(model::TaskIndex j, double x) const;

  /// Deadline discount of task `j` in slot `k`; bit-identical to
  /// Network::tardiness_factor(j, k) (both reduce to
  /// model::DeadlinePolicy::slot_factor on the same inputs).
  double tardiness_factor(model::TaskIndex j, model::SlotIndex k) const {
    if (!has_deadlines) return 1.0;
    const std::size_t idx = static_cast<std::size_t>(j);
    if (infeasible[idx] != 0) return 0.0;
    return deadline_policy.slot_factor(k, deadline[idx]);
  }
};

/// One batch of policy rows in SoA form. `weight`/`required` are either
/// empty (the kernels gather them from the UtilityTable by task id) or
/// parallel to `tasks` (the pre-gathered CSR columns of a finalized
/// PolicyPartition — one fewer gather per row in the hot loop).
struct RowView {
  std::span<const model::TaskIndex> tasks;
  std::span<const double> delta;     ///< per row: energy added this slot (J)
  std::span<const double> weight;    ///< optional per-row task weight
  std::span<const double> required;  ///< optional per-row required energy

  std::size_t size() const { return tasks.size(); }
  RowView subview(std::size_t offset, std::size_t count) const {
    return RowView{tasks.subspan(offset, count), delta.subspan(offset, count),
                   weight.empty() ? weight : weight.subspan(offset, count),
                   required.empty() ? required : required.subspan(offset, count)};
  }
};

/// Batched utility-delta kernel: out[t] = u(j_t, e[j_t] + delta_t) -
/// u(j_t, e[j_t]) for every row, where u is the table's weighted utility and
/// `energy` is a per-task accumulation array (one engine sample). Terms are
/// independent, so this is the vectorizable part of a marginal.
void row_terms(const UtilityTable& table, const double* energy, const RowView& rows,
               double* out);

/// Sum of the row terms accumulated strictly in row order — the engine's
/// evaluation order — with the term computation batched block-wise. This is
/// the whole-policy gain in one sample, bit-identical to the scalar fold.
double row_term_sum(const UtilityTable& table, const double* energy,
                    const RowView& rows);

/// Row terms of one row batch under several energy samples in one call:
/// out[i * rows.size() + t] is the term of row t against panel sample
/// samples[i], where sample s's per-task energies start at
/// energy + s * stride. Each sample's sweep is exactly row_terms — one shape
/// dispatch for the whole panel instead of one per sample.
void row_terms_panel(const UtilityTable& table, const double* energy,
                     std::size_t stride, std::span<const int> samples,
                     const RowView& rows, double* out);

/// Batched deadline discounts: out[t] = table.tardiness_factor(tasks[t], k)
/// for every row — one flat sweep over the SoA deadline columns. The
/// partition builders instead test `k >= deadline` per row and call
/// DeadlinePolicy::slot_factor only on binding rows (the common all-inert
/// case must price nothing); this batched form stays for consumers that
/// want a whole row batch per slot, and is pinned bit-equal to the scalar
/// Network::tardiness_factor by the deadline test battery.
void tardiness_factors(const UtilityTable& table,
                       std::span<const model::TaskIndex> tasks, model::SlotIndex k,
                       double* out);

}  // namespace haste::core::kernels
