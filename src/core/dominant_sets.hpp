// Dominant task set extraction — Algorithm 1 of the paper.
//
// A charger only ever needs to point in one of finitely many directions: the
// maximal sets of simultaneously-coverable tasks ("dominant task sets") and a
// witness orientation for each. The geometric sweep lives in geom::
// dominant_arc_sets; this layer maps tasks to orientation arcs and back.
#pragma once

#include <vector>

#include "model/network.hpp"

namespace haste::core {

/// One dominant task set of a charger: the tasks covered and an orientation
/// witnessing the coverage.
struct DominantTaskSet {
  std::vector<model::TaskIndex> tasks;  ///< sorted ascending
  double orientation = 0.0;             ///< a direction covering exactly these
};

/// Extracts all dominant task sets of charger `i` over the tasks in
/// `candidates` (each of which must cover the charger). Tasks in `candidates`
/// that do not cover the charger are ignored.
std::vector<DominantTaskSet> extract_dominant_sets(
    const model::Network& net, model::ChargerIndex i,
    const std::vector<model::TaskIndex>& candidates);

/// Extracts the dominant task sets of charger `i` over all tasks that cover
/// it (the paper's Gamma_i).
std::vector<DominantTaskSet> extract_dominant_sets(const model::Network& net,
                                                   model::ChargerIndex i);

}  // namespace haste::core
