#include "core/bounds.hpp"

#include <algorithm>

#include "core/objective.hpp"

namespace haste::core {

UpperBounds relaxed_upper_bounds(const model::Network& net) {
  UpperBounds bounds;
  const double slot_seconds = net.time().slot_seconds;
  const auto m = static_cast<std::size_t>(net.task_count());

  // Saturation bound: per-task best case.
  std::vector<double> max_energy(m, 0.0);
  for (model::ChargerIndex i = 0; i < net.charger_count(); ++i) {
    for (model::TaskIndex j : net.coverable_tasks(i)) {
      const model::Task& task = net.tasks()[static_cast<std::size_t>(j)];
      max_energy[static_cast<std::size_t>(j)] +=
          net.potential_power(i, j) * slot_seconds *
          static_cast<double>(task.duration_slots());
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    bounds.saturation_bound +=
        net.weighted_task_utility(static_cast<model::TaskIndex>(j), max_energy[j]);
  }

  // Linear policy bound: sum over partitions of the best linearized gain.
  // For concave U with U(0) = 0, the average slope U(x) / x is nonincreasing,
  // so for every x >= eps:  U(x) <= (U(eps) / eps) * x.  We take eps nine
  // orders of magnitude below the task's requirement — far below any real
  // slot delivery — and inflate marginally for rounding, which keeps the
  // bound valid for every shape the library ships without assuming a closed
  // form for the initial slope.
  const auto initial_slope = [&](model::TaskIndex j) {
    const model::Task& task = net.tasks()[static_cast<std::size_t>(j)];
    const double eps = task.required_energy * 1e-9;
    return net.weighted_task_utility(j, eps) / eps * (1.0 + 1e-9);
  };
  std::vector<double> slope(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    slope[j] = initial_slope(static_cast<model::TaskIndex>(j));
  }

  const std::vector<PolicyPartition> partitions = build_partitions(net);
  for (const PolicyPartition& partition : partitions) {
    double best = 0.0;
    for (const Policy& policy : partition.policies) {
      double gain = 0.0;
      for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
        gain += slope[static_cast<std::size_t>(policy.tasks[t])] * policy.slot_energy[t];
      }
      best = std::max(best, gain);
    }
    bounds.linear_policy_bound += best;
  }

  bounds.combined = std::min({bounds.saturation_bound, bounds.linear_policy_bound,
                              net.utility_upper_bound()});
  return bounds;
}

}  // namespace haste::core
