#include "core/offline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace haste::core {

namespace {

/// Marginals within this relative slack are considered tied for the
/// switch-avoiding tie-break.
constexpr double kTieSlack = 1e-12;

}  // namespace

OfflineResult schedule_offline_over(const model::Network& net,
                                    const std::vector<PolicyPartition>& partitions,
                                    const OfflineConfig& config,
                                    std::span<const double> initial_energy) {
  MarginalEngine engine(net,
                        MarginalEngine::Config{config.colors, config.samples, config.seed},
                        initial_energy);
  const int colors = engine.colors();

  // selections[p][c] = index of the chosen policy of partition p for color c,
  // or -1 when nothing was added.
  std::vector<std::vector<int>> selections(partitions.size(),
                                           std::vector<int>(static_cast<std::size_t>(colors), -1));

  // Previous selected orientation per (charger, color), updated as we walk
  // partitions in slot-major order; drives the switch-avoiding tie-break.
  std::map<std::pair<model::ChargerIndex, int>, double> previous_orientation;

  for (int c = 0; c < colors; ++c) {
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      const PolicyPartition& partition = partitions[p];
      int best = -1;
      double best_marginal = 0.0;
      bool best_is_previous = false;
      const auto prev_it = previous_orientation.find({partition.charger, c});
      for (std::size_t q = 0; q < partition.policies.size(); ++q) {
        const Policy& policy = partition.policies[q];
        const double m = engine.marginal(partition.charger, partition.slot,
                                         partition.policy_tasks(q),
                                         partition.policy_energy(q), c);
        const bool is_previous =
            config.switch_avoiding_tiebreak && prev_it != previous_orientation.end() &&
            policy.orientation == prev_it->second;
        const bool better =
            m > best_marginal * (1.0 + kTieSlack) + kTieSlack ||
            (is_previous && !best_is_previous && m >= best_marginal * (1.0 - kTieSlack) - kTieSlack);
        if (best < 0 ? (m > 0.0 || config.commit_zero_marginal) : better) {
          // First acceptable candidate, or strictly better / tie-preferred.
          if (best < 0 || better) {
            best = static_cast<int>(q);
            best_marginal = m;
            best_is_previous = is_previous;
          }
        }
      }
      if (best >= 0) {
        const auto bq = static_cast<std::size_t>(best);
        engine.commit(partition.charger, partition.slot, partition.policy_tasks(bq),
                      partition.policy_energy(bq), c);
        selections[p][static_cast<std::size_t>(c)] = best;
        previous_orientation[{partition.charger, c}] = partition.policies[bq].orientation;
      }
    }
  }

  OfflineResult result;
  result.planned_relaxed_utility = engine.expected_value();
  result.schedule = model::Schedule(net.charger_count(), net.horizon());
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const PolicyPartition& partition = partitions[p];
    const int c = MarginalEngine::final_color(config.seed, partition.charger,
                                              partition.slot, colors);
    const int chosen = selections[p][static_cast<std::size_t>(c)];
    if (chosen >= 0) {
      result.schedule.assign(partition.charger, partition.slot,
                             partition.policies[static_cast<std::size_t>(chosen)].orientation);
    }
  }
  return result;
}

OfflineResult schedule_offline(const model::Network& net, const OfflineConfig& config) {
  const std::vector<PolicyPartition> partitions = build_partitions(net);
  return schedule_offline_over(net, partitions, config, {});
}

}  // namespace haste::core
