#include "core/offline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace haste::core {

namespace {

/// Marginals within this relative slack are considered tied for the
/// switch-avoiding tie-break.
constexpr double kTieSlack = 1e-12;

/// The incremental mode's per-run cache. The per-slot energy a task would
/// receive from a charger is orientation- AND slot-independent (the power
/// law is sector-gated, not sector-shaped, and slots have equal length), so
/// every policy of every (charger, slot) partition covering task j prices
/// the *same* utility-delta term for j. The cache therefore keys terms by
/// (charger, task, sample) — a "column" — rather than by policy row: a
/// column priced at one slot stays fresh across the charger's whole
/// slot-major sweep until a commit actually moves that task's utility in
/// that sample. Each column is stamped with the engine's (task, sample)
/// version it was priced at; a lazy refresh recomputes only the columns a
/// commit dirtied and re-sums the chain in the engine's evaluation order
/// (samples ascending, rows in policy-row order) — bit-identical to the
/// rebuild path's from-scratch marginal.
///
/// On top of the terms, `values` holds each policy's last exactly-computed
/// marginal per color. Energies only grow and utilities are concave, so
/// every term — and hence every policy marginal — is non-increasing over the
/// run: a stale cached value is a valid UPPER bound (lazy partition maxima,
/// the Minoux argument applied within a partition). The sweep skips any
/// policy whose bound cannot alter the running selection, so losing policies
/// are usually never re-priced at all even when their columns are dirty.
struct TabularCache {
  int samples = 1;
  std::vector<int> sample_color;           // [p * samples + s]
  std::vector<std::size_t> policy_offset;  // [p + 1]: cumulative policy counts
  // col_of[i * task_count + j] -> global column of (charger i, task j), or -1.
  // There is no materialized row -> column map: a policy's columns are found
  // by gathering col_of over its task rows, which keeps the cache build free
  // of any per-row work (columns and their deltas derive from the network's
  // coverable-task lists, not from walking the ground set).
  std::vector<std::ptrdiff_t> col_of;
  // Per column: the base (undiscounted) delta the shared term was priced at.
  // Deadline-driven instances break the slot-invariance premise above for
  // tardy rows — their slot_energy carries a tardiness discount — so any row
  // whose delta mismatches its column's is priced fresh per refresh and
  // never reads or writes the shared term (see refresh_marginal). The
  // deadline-free overhead is one load-and-compare per row.
  std::vector<double> col_delta;
  std::vector<double> terms;               // [col * samples + s]
  std::vector<std::uint64_t> versions;     // same layout as `terms`
  std::vector<double> values;              // [(policy_offset[p] + q) * colors + c]
  // Task-level version_sum of the policy at the moment `values[idx]` was last
  // computed exact (same layout as `values`). Task versions upper-bound every
  // per-sample counter, so an unchanged sum certifies the cached value exact
  // without walking a single column — the hot path when a partition is
  // revisited and nothing near it has committed since.
  std::vector<std::uint64_t> stamps;
};

/// Builds the initial panel. Columns derive straight from the network — one
/// per (charger, coverable task) pair, with delta = potential_power *
/// slot_seconds, the exact expression make_slot_policies stores in
/// Policy::slot_energy — so the build never walks the ground set's rows to
/// discover its layout. Every sample starts from the same per-task energies,
/// so one row_term evaluation per column is exact for all S samples
/// (replicated), and version 0 matches the engine's untouched counters; the
/// initial per-(policy, color) values fan out over the thread pool like
/// global greedy's heap build.
TabularCache build_tabular_cache(const model::Network& net, const MarginalEngine& engine,
                                 const std::vector<PolicyPartition>& partitions) {
  TabularCache cache;
  const int samples = engine.samples();
  const int colors = engine.colors();
  const auto task_count = static_cast<std::size_t>(net.task_count());
  cache.samples = samples;
  cache.policy_offset.assign(partitions.size() + 1, 0);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    cache.policy_offset[p + 1] = cache.policy_offset[p] + partitions[p].policies.size();
  }
  cache.col_of.assign(static_cast<std::size_t>(net.charger_count()) * task_count, -1);
  std::vector<model::TaskIndex> col_task;
  const double slot_seconds = net.time().slot_seconds;
  for (model::ChargerIndex i = 0; i < net.charger_count(); ++i) {
    const std::size_t charger_base = static_cast<std::size_t>(i) * task_count;
    for (model::TaskIndex j : net.coverable_tasks(i)) {
      cache.col_of[charger_base + static_cast<std::size_t>(j)] =
          static_cast<std::ptrdiff_t>(col_task.size());
      col_task.push_back(j);
      cache.col_delta.push_back(net.potential_power(i, j) * slot_seconds);
    }
  }
  const std::vector<double>& col_delta = cache.col_delta;
  cache.sample_color.assign(partitions.size() * static_cast<std::size_t>(samples), 0);
  cache.terms.assign(col_task.size() * static_cast<std::size_t>(samples), 0.0);
  cache.versions.assign(col_task.size() * static_cast<std::size_t>(samples), 0);
  cache.values.assign(cache.policy_offset.back() * static_cast<std::size_t>(colors), 0.0);
  // Build-time version sums are all zero: the engine bumps no counter before
  // the first commit (a warm start seeds energies without bumping), so a zero
  // stamp certifies the replicated initial values below.
  cache.stamps.assign(cache.values.size(), 0);
  // Price every column of the panel with one batched oracle call — the
  // columns are exactly a RowView (parallel task/delta arrays), so this is
  // the kernel layer's natural unit. The replication across samples is plain
  // memory traffic; fanning it out per column through parallel_for's
  // std::function was costing more than the pricing itself.
  std::vector<double> base_terms(col_task.size());
  engine.row_terms(0, kernels::RowView{col_task, col_delta, {}, {}},
                   base_terms.data());
  for (std::size_t col = 0; col < col_task.size(); ++col) {
    double* terms = cache.terms.data() + col * static_cast<std::size_t>(samples);
    for (int s = 0; s < samples; ++s) terms[s] = base_terms[col];
  }
  util::parallel_for(partitions.size(), [&](std::size_t p) {
    const PolicyPartition& partition = partitions[p];
    int* colors_of = cache.sample_color.data() + p * static_cast<std::size_t>(samples);
    for (int s = 0; s < samples; ++s) {
      colors_of[s] = MarginalEngine::panel_color(engine.seed(), s, partition.charger,
                                                 partition.slot, engine.colors());
    }
    const std::ptrdiff_t* col_of =
        cache.col_of.data() + static_cast<std::size_t>(partition.charger) * task_count;
    for (std::size_t q = 0; q < partition.policies.size(); ++q) {
      const auto tasks = partition.policy_tasks(q);
      const auto deltas = partition.policy_energy(q);
      // `inner` accumulates the shared terms in policy-row order — the same
      // fold a clean refresh performs per sample — and each matching sample
      // contributes the identical inner (replication), so the initial value
      // is exactly what a first refresh would return. Tardiness-discounted
      // rows (delta mismatching the column's base delta) are priced fresh,
      // exactly as refresh_marginal will do; with replicated start energies
      // one sample-0 term is exact for all samples.
      double inner = 0.0;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        const auto col = static_cast<std::size_t>(col_of[tasks[t]]);
        if (deltas[t] == col_delta[col]) {
          inner += cache.terms[col * static_cast<std::size_t>(samples)];
        } else {
          inner += engine.row_term(0, tasks[t], deltas[t]);
        }
      }
      double* values =
          cache.values.data() + (cache.policy_offset[p] + q) * static_cast<std::size_t>(colors);
      // Scatter by sample color instead of scanning all samples per color:
      // for each color the additions still land in ascending sample order,
      // so the fold is bit-identical to the color-major double loop at a
      // quarter of the iterations.
      for (int c = 0; c < colors; ++c) values[c] = 0.0;
      for (int s = 0; s < samples; ++s) values[colors_of[s]] += inner;
      for (int c = 0; c < colors; ++c) values[c] /= static_cast<double>(samples);
    }
  });
  return cache;
}

/// Lazily refreshed marginal of one policy (cached value at flat index
/// `value_idx`) of partition `p` for color `c`, with `col_of` pre-offset to
/// the partition's charger: recomputes exactly the shared (column, sample)
/// terms whose task version moved, then re-sums in evaluation order. A
/// column freshened here stays fresh for every later policy of the same
/// fold (no commit happens mid-fold). The caller stores the return into
/// `cache.values[value_idx]`, which keeps value and stamp in sync.
double refresh_marginal(const MarginalEngine& engine, TabularCache& cache, std::size_t p,
                        int c, const std::ptrdiff_t* col_of, std::size_t value_idx,
                        std::span<const model::TaskIndex> tasks,
                        std::span<const double> slot_energy) {
  // Cheap certificate first: task versions only grow and dominate every
  // per-sample counter, so an unchanged sum proves no relevant term moved
  // since the cached value was computed — one gather per row instead of the
  // full version-compare-and-sum walk over the columns.
  std::uint64_t vsum = 0;
  for (model::TaskIndex j : tasks) vsum += engine.task_version(j);
  if (cache.stamps[value_idx] == vsum) return cache.values[value_idx];
  const int samples = cache.samples;
  const int* colors_of = cache.sample_color.data() + p * static_cast<std::size_t>(samples);
  // Rows that need an oracle price this sample — tardy (delta-mismatch) rows
  // always, shared columns only when their version moved — are gathered in
  // row order and priced by one batched row_terms call (the kernel-layer
  // blockwise path), then folded back in the identical row order, so both
  // the bits and the row_term counter totals match the per-row loop this
  // replaces. Thread-local scratch: the lazy loop runs under the pool.
  enum : unsigned char { kRowCached = 0, kRowMismatch = 1, kRowStale = 2 };
  thread_local std::vector<model::TaskIndex> batch_tasks;
  thread_local std::vector<double> batch_delta;
  thread_local std::vector<double> batch_terms;
  thread_local std::vector<unsigned char> row_kind;
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    if (colors_of[s] != c) continue;
    batch_tasks.clear();
    batch_delta.clear();
    row_kind.assign(tasks.size(), kRowCached);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto col = static_cast<std::size_t>(col_of[tasks[t]]);
      if (slot_energy[t] != cache.col_delta[col]) {
        // Tardiness-discounted row: its delta deviates from the shared
        // column's base delta, so price it fresh and leave the shared term
        // (still valid for every base-delta row of the charger) untouched.
        row_kind[t] = kRowMismatch;
        batch_tasks.push_back(tasks[t]);
        batch_delta.push_back(slot_energy[t]);
        continue;
      }
      const std::size_t idx =
          col * static_cast<std::size_t>(samples) + static_cast<std::size_t>(s);
      if (cache.versions[idx] != engine.sample_version(s, tasks[t])) {
        row_kind[t] = kRowStale;
        batch_tasks.push_back(tasks[t]);
        batch_delta.push_back(slot_energy[t]);
      }
    }
    if (!batch_tasks.empty()) {
      batch_terms.resize(batch_tasks.size());
      engine.row_terms(s, kernels::RowView{batch_tasks, batch_delta, {}, {}},
                       batch_terms.data());
    }
    double inner = 0.0;
    std::size_t b = 0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (row_kind[t] == kRowMismatch) {
        inner += batch_terms[b++];
        continue;
      }
      const auto col = static_cast<std::size_t>(col_of[tasks[t]]);
      const std::size_t idx =
          col * static_cast<std::size_t>(samples) + static_cast<std::size_t>(s);
      if (row_kind[t] == kRowStale) {
        cache.terms[idx] = batch_terms[b++];
        cache.versions[idx] = engine.sample_version(s, tasks[t]);
      }
      inner += cache.terms[idx];
    }
    total += inner;
  }
  cache.stamps[value_idx] = vsum;
  return total / static_cast<double>(samples);
}

}  // namespace

OfflineResult schedule_offline_over(const model::Network& net,
                                    const std::vector<PolicyPartition>& partitions,
                                    const OfflineConfig& config,
                                    std::span<const double> initial_energy) {
  MarginalEngine engine(net,
                        MarginalEngine::Config{config.colors, config.samples, config.seed},
                        initial_energy);
  const int colors = engine.colors();
  const bool incremental = config.mode == TabularMode::kIncremental;

  HASTE_OBS_SPAN(schedule_span, "offline.schedule");
  schedule_span.arg("chargers", util::Json(net.charger_count()));
  schedule_span.arg("tasks", util::Json(net.task_count()));
  schedule_span.arg("partitions", util::Json(static_cast<std::int64_t>(partitions.size())));
  schedule_span.arg("colors", util::Json(colors));
  schedule_span.arg("mode", util::Json(incremental ? "incremental" : "rebuild"));

  // selections[p][c] = index of the chosen policy of partition p for color c,
  // or -1 when nothing was added.
  std::vector<std::vector<int>> selections(partitions.size(),
                                           std::vector<int>(static_cast<std::size_t>(colors), -1));

  // Previous selected orientation per (charger, color), updated as we walk
  // partitions in slot-major order; drives the switch-avoiding tie-break.
  // NaN marks "no previous orientation" — it compares unequal to every real
  // orientation, so the is_previous test needs no presence flag.
  std::vector<double> previous_orientation(
      static_cast<std::size_t>(net.charger_count()) * static_cast<std::size_t>(colors),
      std::numeric_limits<double>::quiet_NaN());

  TabularCache cache;
  if (incremental) {
    HASTE_OBS_SPAN(build_span, "offline.cache_build");
    cache = build_tabular_cache(net, engine, partitions);
  }
  std::vector<char> fresh;  // per-(partition, color) scratch: bound is exact
  // Rebuild mode with the kernel path latched prices each partition's whole
  // policy set through one batched oracle call; the scalar reference path
  // keeps the historical per-policy marginal() loop.
  const bool batch_rebuild = !incremental && engine.using_kernels();
  std::vector<double> batched;  // per-partition scratch for batch_rebuild
  // Rebuild mode skips the tabular cache, so hoist the (pure) per-partition
  // color panel out of the visit loop here: every partition is visited once
  // per color stage, and rehashing its `samples` panel colors on each visit
  // is measurable at scale. panel[p * samples + s] = color of sample s.
  const int samples = engine.samples();
  std::vector<int> panel;
  if (batch_rebuild) {
    panel.resize(partitions.size() * static_cast<std::size_t>(samples));
    util::parallel_for(partitions.size(), [&](std::size_t p) {
      int* colors_of = panel.data() + p * static_cast<std::size_t>(samples);
      for (int s = 0; s < samples; ++s) {
        colors_of[s] = MarginalEngine::panel_color(
            engine.seed(), s, partitions[p].charger, partitions[p].slot, colors);
      }
    });
  }

  for (int c = 0; c < colors; ++c) {
    // One span per color stage: coarse enough to stay invisible in the
    // per-partition hot loop, fine enough to see the stage skew per trace.
    HASTE_OBS_SPAN(color_span, "offline.color");
    color_span.arg("color", util::Json(c));
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      const PolicyPartition& partition = partitions[p];
      int best = -1;
      double best_marginal = 0.0;
      bool best_is_previous = false;
      const double prev =
          previous_orientation[static_cast<std::size_t>(partition.charger) *
                                   static_cast<std::size_t>(colors) +
                               static_cast<std::size_t>(c)];
      double* bounds =
          incremental ? cache.values.data() +
                            cache.policy_offset[p] * static_cast<std::size_t>(colors)
                      : nullptr;
      const std::ptrdiff_t* col_of =
          incremental ? cache.col_of.data() +
                            static_cast<std::size_t>(partition.charger) *
                                static_cast<std::size_t>(net.task_count())
                      : nullptr;
      // Lazy partition maxima, phase A: pin down the partition's exact best
      // marginal by refreshing policies in descending bound order (Minoux).
      // Each refresh can only lower a bound, so when the running argmax is
      // already exact (or nothing is positive) it is the true maximum.
      double vstar = 0.0;
      if (incremental && !partition.policies.empty()) {
        fresh.assign(partition.policies.size(), 0);
        while (true) {
          std::size_t top = 0;
          for (std::size_t q = 1; q < partition.policies.size(); ++q) {
            if (bounds[q * static_cast<std::size_t>(colors) + c] >
                bounds[top * static_cast<std::size_t>(colors) + c]) {
              top = q;
            }
          }
          if (fresh[top] != 0 || bounds[top * static_cast<std::size_t>(colors) + c] <= 0.0) {
            vstar = bounds[top * static_cast<std::size_t>(colors) + c];
            break;
          }
          bounds[top * static_cast<std::size_t>(colors) + c] = refresh_marginal(
              engine, cache, p, c, col_of,
              (cache.policy_offset[p] + top) * static_cast<std::size_t>(colors) +
                  static_cast<std::size_t>(c),
              partition.policy_tasks(top), partition.policy_energy(top));
          fresh[top] = 1;
        }
      }
      // The lowest comparison threshold the fold below can ever apply once a
      // policy inside vstar's tie band has been accepted (the running best
      // can leave the band only by shrinking through tie-preferred updates,
      // each bounded by one slack step). A policy bounded under this floor
      // can at most cause intermediate updates while the fold's best is
      // still below the band — and the first in-band policy then resets the
      // whole fold state through the strict branch — so skipping it never
      // changes the selection.
      const double vstar_floor =
          (((vstar - kTieSlack) / (1.0 + kTieSlack)) * (1.0 - kTieSlack) - kTieSlack) *
              (1.0 - kTieSlack) -
          kTieSlack;
      if (batch_rebuild) {
        batched.resize(partition.policies.size());
        engine.partition_marginals(
            partition, c,
            {panel.data() + p * static_cast<std::size_t>(samples),
             static_cast<std::size_t>(samples)},
            batched.data());
      }
      for (std::size_t q = 0; q < partition.policies.size(); ++q) {
        const Policy& policy = partition.policies[q];
        if (incremental) {
          // Phase B: the cached value is an upper bound on the current
          // marginal (terms only shrink), so a policy that can neither beat
          // the running selection nor reach vstar's band leaves the fold
          // state untouched — exactly as if its true marginal were computed
          // and rejected. Skip it without pricing a single column.
          const double bound = bounds[q * static_cast<std::size_t>(colors) + c];
          const bool below_floor = vstar > 0.0 && bound < vstar_floor;
          const bool can_alter =
              best < 0 ? ((bound > 0.0 && !below_floor) || config.commit_zero_marginal)
                       : (!below_floor &&
                          bound >= best_marginal * (1.0 - kTieSlack) - kTieSlack);
          if (!can_alter) continue;
        }
        const double m =
            incremental
                ? refresh_marginal(engine, cache, p, c, col_of,
                                   (cache.policy_offset[p] + q) * static_cast<std::size_t>(colors) +
                                       static_cast<std::size_t>(c),
                                   partition.policy_tasks(q), partition.policy_energy(q))
            : batch_rebuild
                ? batched[q]
                : engine.marginal(partition.charger, partition.slot,
                                  partition.policy_rows(q), c);
        if (incremental) bounds[q * static_cast<std::size_t>(colors) + c] = m;
        const bool is_previous =
            config.switch_avoiding_tiebreak && policy.orientation == prev;
        const bool better =
            m > best_marginal * (1.0 + kTieSlack) + kTieSlack ||
            (is_previous && !best_is_previous && m >= best_marginal * (1.0 - kTieSlack) - kTieSlack);
        if (best < 0 ? (m > 0.0 || config.commit_zero_marginal) : better) {
          // First acceptable candidate, or strictly better / tie-preferred.
          if (best < 0 || better) {
            best = static_cast<int>(q);
            best_marginal = m;
            best_is_previous = is_previous;
          }
        }
      }
      if (best >= 0) {
        const auto bq = static_cast<std::size_t>(best);
        // The incremental path selected `best` on an exactly-refreshed cached
        // marginal, so the realized gain commit() would recompute is already
        // known — skip it and pay only the energy/version updates.
        if (incremental) {
          engine.commit_no_gain(partition.charger, partition.slot,
                                partition.policy_tasks(bq), partition.policy_energy(bq), c);
        } else {
          engine.commit(partition.charger, partition.slot, partition.policy_tasks(bq),
                        partition.policy_energy(bq), c);
        }
        selections[p][static_cast<std::size_t>(c)] = best;
        previous_orientation[static_cast<std::size_t>(partition.charger) *
                                 static_cast<std::size_t>(colors) +
                             static_cast<std::size_t>(c)] =
            partition.policies[bq].orientation;
      }
    }
  }

  OfflineResult result;
  result.planned_relaxed_utility = engine.expected_value();
  result.schedule = model::Schedule(net.charger_count(), net.horizon());
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const PolicyPartition& partition = partitions[p];
    const int c = MarginalEngine::final_color(config.seed, partition.charger,
                                              partition.slot, colors);
    const int chosen = selections[p][static_cast<std::size_t>(c)];
    if (chosen >= 0) {
      result.schedule.assign(partition.charger, partition.slot,
                             partition.policies[static_cast<std::size_t>(chosen)].orientation);
    }
  }
  const MarginalEngine::Stats stats = engine.stats();
  result.row_evaluations = stats.row_terms;
  result.marginal_evaluations = stats.marginals;
  // Mirror the engine's evaluation counts into the registry so profiles of
  // any caller (CLI, benches, shard workers) see them without plumbing.
  HASTE_OBS_COUNTER_ADD("offline.row_evals", stats.row_terms);
  HASTE_OBS_COUNTER_ADD("offline.marginal_evals", stats.marginals);
  HASTE_OBS_COUNTER_ADD("offline.commits", stats.commits);
  HASTE_OBS_COUNTER_ADD("offline.schedules", 1);
  return result;
}

OfflineResult schedule_offline(const model::Network& net, const OfflineConfig& config) {
  const std::vector<PolicyPartition> partitions = build_partitions(net);
  return schedule_offline_over(net, partitions, config, {});
}

}  // namespace haste::core
