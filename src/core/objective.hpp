// The HASTE-R objective machinery:
//
//  * PolicyPartition — the ground set of RP2: for each (charger, slot), the
//    scheduling policies derived from the charger's dominant task sets,
//    restricted to the tasks active in that slot.
//  * MarginalEngine — an incremental oracle for the expected charging utility
//    after S-C tuple sampling, F(Q) = E_c[f(sample_c(Q))]. The expectation
//    over colorings is estimated with a fixed panel of sampled color vectors
//    (common random numbers), so marginals are consistent across greedy steps
//    and the whole algorithm is deterministic given the seed. With C = 1 the
//    panel is a single trivial sample and the engine computes f exactly.
//
// Color vectors are derived by hashing (seed, sample, charger, slot) rather
// than drawn from a shared stream: distributed nodes can therefore agree on
// the panel without exchanging any randomness (see dist/online).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dominant_sets.hpp"
#include "core/kernels.hpp"
#include "model/network.hpp"

namespace haste::core {

/// How the TabularGreedy schedulers (offline and the distributed nodes)
/// evaluate candidate marginals.
enum class TabularMode {
  kRebuild,      ///< re-evaluate every policy from scratch (reference path)
  kIncremental,  ///< per-(task, sample) dirty tracking with cached row terms
};

/// One scheduling policy of a partition: a dominant task set restricted to
/// the tasks active in the partition's slot.
struct Policy {
  double orientation = 0.0;
  std::vector<model::TaskIndex> tasks;  ///< active covered tasks, sorted
  std::vector<double> slot_energy;      ///< per task: P_r(s_i, o_j) * T_s (J)
};

/// The partition Theta_{i,k}: all policies of charger `charger` at `slot`.
///
/// Besides the per-policy vectors (kept for the message protocol, which
/// ships individual policies), a finalized partition also stores every
/// policy's (task, energy) rows in one CSR-style flat layout so the hot
/// evaluation loops walk contiguous memory instead of chasing one heap
/// allocation per policy.
struct PolicyPartition {
  model::ChargerIndex charger = 0;
  model::SlotIndex slot = 0;
  std::vector<Policy> policies;

  // CSR rows over all policies: policy q's rows live at
  // [row_offsets[q], row_offsets[q + 1]) of flat_tasks / flat_energy.
  std::vector<std::int32_t> row_offsets;
  std::vector<model::TaskIndex> flat_tasks;
  std::vector<double> flat_energy;
  // Optional precomputed row columns (parallel to flat_tasks): each row's
  // task weight and required energy, gathered once at finalize(net) so the
  // evaluation kernels read them contiguously instead of re-gathering
  // per (row, sample) forever after. Empty when finalize() ran without a
  // network (protocol-shipped partitions).
  std::vector<double> flat_weight;
  std::vector<double> flat_required;
  // Optional partition-local column index, also built by finalize(net).
  // Within a partition every row of the same task carries the same energy
  // delta — potential_power(i, j) * slot_seconds does not depend on the
  // policy — so the flat rows collapse to the partition's distinct
  // (task, delta) columns. flat_col maps each flat row to its column; the
  // col_* arrays are the deduplicated SoA columns. partition_marginals
  // prices the (2-3x smaller) column set once per sample and gathers per
  // policy; bit-identical because rows sharing a column have identical
  // inputs and therefore identical terms.
  std::vector<std::int32_t> flat_col;
  std::vector<model::TaskIndex> col_task;
  std::vector<double> col_delta;
  std::vector<double> col_weight;
  std::vector<double> col_required;

  /// (Re)builds the CSR arrays from `policies`. build_partitions() finalizes
  /// every partition it returns; call this after mutating `policies` by hand.
  /// The network overload additionally fills the per-row weight/required
  /// columns.
  void finalize();
  void finalize(const model::Network& net);

  /// True once the CSR arrays mirror `policies`.
  bool finalized() const { return row_offsets.size() == policies.size() + 1; }

  /// Contiguous (task, energy) rows of policy `q`; falls back to the
  /// policy's own vectors when the partition was never finalized. Inline:
  /// the evaluation loops call these per candidate, so an out-of-line hop
  /// per accessor is measurable at scale.
  std::span<const model::TaskIndex> policy_tasks(std::size_t q) const {
    if (!finalized()) return policies[q].tasks;
    const auto begin = static_cast<std::size_t>(row_offsets[q]);
    const auto end = static_cast<std::size_t>(row_offsets[q + 1]);
    return {flat_tasks.data() + begin, end - begin};
  }
  std::span<const double> policy_energy(std::size_t q) const {
    if (!finalized()) return policies[q].slot_energy;
    const auto begin = static_cast<std::size_t>(row_offsets[q]);
    const auto end = static_cast<std::size_t>(row_offsets[q + 1]);
    return {flat_energy.data() + begin, end - begin};
  }

  /// True when finalize(net) filled the per-row weight/required columns.
  bool has_row_columns() const {
    return finalized() && flat_weight.size() == flat_tasks.size() &&
           flat_required.size() == flat_tasks.size();
  }

  /// True when finalize(net) also built the deduplicated column index.
  bool has_column_index() const {
    return has_row_columns() && flat_col.size() == flat_tasks.size() &&
           col_task.size() == col_delta.size() &&
           col_task.size() == col_weight.size() &&
           col_task.size() == col_required.size();
  }

  /// Policy `q` as a kernel row batch, with the weight/required columns
  /// attached when finalize(net) precomputed them.
  kernels::RowView policy_rows(std::size_t q) const {
    if (has_row_columns()) {
      const auto begin = static_cast<std::size_t>(row_offsets[q]);
      const auto count = static_cast<std::size_t>(row_offsets[q + 1]) - begin;
      return kernels::RowView{{flat_tasks.data() + begin, count},
                              {flat_energy.data() + begin, count},
                              {flat_weight.data() + begin, count},
                              {flat_required.data() + begin, count}};
    }
    return kernels::RowView{policy_tasks(q), policy_energy(q), {}, {}};
  }
};

/// Builds the ground set over slots [first_slot, net.horizon()) for all
/// chargers. Dominant sets are computed once per charger from `candidates`
/// (default: every task that covers it) and filtered per slot to active
/// tasks; empty policies, duplicate task sets within a partition, and empty
/// partitions are dropped. Partitions are ordered slot-major (all chargers of
/// slot k before slot k+1), which the schedulers rely on for their
/// switch-avoiding tie-break.
std::vector<PolicyPartition> build_partitions(const model::Network& net,
                                              model::SlotIndex first_slot = 0);

/// As above but restricted to the given candidate tasks (online case, where
/// only released tasks are known).
std::vector<PolicyPartition> build_partitions(const model::Network& net,
                                              model::SlotIndex first_slot,
                                              const std::vector<model::TaskIndex>& candidates);

/// Filters one charger's dominant sets to the tasks active at `slot`,
/// deduplicating policies with identical active sets. Exposed for the
/// distributed scheduler, which builds partitions per node.
std::vector<Policy> make_slot_policies(const model::Network& net, model::ChargerIndex i,
                                       const std::vector<DominantTaskSet>& dominant,
                                       model::SlotIndex slot);

/// Incremental estimator of the expected utility after S-C tuple sampling.
class MarginalEngine {
 public:
  struct Config {
    int colors = 1;        ///< C; 1 degenerates to exact locally-greedy
    int samples = 1;       ///< color-vector panel size S (>= 1); ignored, forced
                           ///< to 1, when colors == 1
    std::uint64_t seed = 1;///< shared randomness seed for the color panel
  };

  /// `initial_energy`, when non-empty, must have one entry per task of the
  /// network: energy already harvested (online re-planning).
  MarginalEngine(const model::Network& net, Config config,
                 std::span<const double> initial_energy = {});

  /// Color assigned to partition (charger i, slot k) in panel sample `s`.
  /// Pure function of (seed, s, i, k) so independent engines agree.
  static int panel_color(std::uint64_t seed, int sample, model::ChargerIndex i,
                         model::SlotIndex k, int colors);

  /// The color c_{i,k} drawn for the final sampling step (line 7-8 of
  /// Algorithm 2); also a pure hash so distributed nodes agree.
  static int final_color(std::uint64_t seed, model::ChargerIndex i, model::SlotIndex k,
                         int colors);

  /// Marginal gain of labeling `policy` of charger `i` at slot `k` with color
  /// `c`: the increase of the panel-averaged utility.
  double marginal(model::ChargerIndex i, model::SlotIndex k, const Policy& policy,
                  int c) const {
    return marginal(i, k, policy.tasks, policy.slot_energy, c);
  }

  /// Span-based core of `marginal`: evaluates one policy given as parallel
  /// (task, energy) rows — e.g. one CSR row range of a PolicyPartition.
  double marginal(model::ChargerIndex i, model::SlotIndex k,
                  std::span<const model::TaskIndex> tasks,
                  std::span<const double> slot_energy, int c) const {
    return marginal(i, k, kernels::RowView{tasks, slot_energy, {}, {}}, c);
  }

  /// RowView core of `marginal`; PolicyPartition::policy_rows attaches the
  /// precomputed weight/required columns, which is the fastest entry.
  double marginal(model::ChargerIndex i, model::SlotIndex k,
                  const kernels::RowView& rows, int c) const;

  /// Marginals of EVERY policy of `partition` for color `c` in one call:
  /// out[q] = marginal(partition.charger, partition.slot, policy q, c), bit
  /// for bit. With the kernel path latched this hashes the color panel once,
  /// prices the partition's deduplicated (task, delta) columns across all
  /// matching samples in one panel sweep (the unit the rebuild loop actually
  /// consumes), then gather-folds each policy's row segment in row order —
  /// same per-policy accumulation order, same counter totals, a fraction of
  /// the per-call overhead and of the arithmetic. Falls back to per-policy
  /// marginal() calls when the kernel path is off or the partition carries
  /// no column index (finalize() without a network).
  void partition_marginals(const PolicyPartition& partition, int c, double* out) const;

  /// As above with the partition's panel colors precomputed by the caller:
  /// sample_colors[s] must equal panel_color(seed(), s, partition.charger,
  /// partition.slot, colors()). The rebuild scheduler visits every partition
  /// once per color stage, so hoisting the (pure) per-sample hashes out of
  /// the visit loop removes a colors()-fold recompute.
  void partition_marginals(const PolicyPartition& partition, int c,
                           std::span<const int> sample_colors, double* out) const;

  /// Commits the S-C tuple; returns the realized marginal.
  double commit(model::ChargerIndex i, model::SlotIndex k, const Policy& policy, int c) {
    return commit(i, k, policy.tasks, policy.slot_energy, c);
  }

  /// Span-based core of `commit`.
  double commit(model::ChargerIndex i, model::SlotIndex k,
                std::span<const model::TaskIndex> tasks,
                std::span<const double> slot_energy, int c);

  /// Commit without re-evaluating the realized gain. For callers that
  /// selected the policy on a certified-exact cached marginal (the
  /// incremental schedulers): the gain commit() would recompute is bit for
  /// bit the value they already hold, so only the energy accumulation and
  /// the version bumps remain to be done. Identical state trajectory to
  /// commit(), zero row_term work.
  void commit_no_gain(model::ChargerIndex i, model::SlotIndex k,
                      std::span<const model::TaskIndex> tasks,
                      std::span<const double> slot_energy, int c);

  /// Applies the effect of another charger's committed tuple (distributed
  /// case): identical to commit but named for clarity at call sites.
  double apply_remote_commit(model::ChargerIndex i, model::SlotIndex k,
                             const Policy& policy, int c) {
    return commit(i, k, policy, c);
  }

  /// Current estimate of F(Q) (panel average of the weighted utility).
  double expected_value() const;

  int colors() const { return config_.colors; }
  int samples() const { return config_.samples; }
  std::uint64_t seed() const { return config_.seed; }

  // --- Per-(task, sample) dirty tracking -----------------------------------
  //
  // Every commit that changes a task's *utility in panel sample s* bumps the
  // (task, sample) version counter. A marginal for color c depends on the
  // engine state only through its tasks' utilities in the samples whose color
  // is c, so a cached marginal whose (task, relevant-sample) versions are
  // unchanged is EXACT — not just a submodular upper bound. Commits that only
  // pour energy into saturated tasks bump nothing: utility shapes are concave
  // and non-decreasing, so a task that is flat across one commit stays flat
  // for the rest of the run. The schedulers use this for zero-re-evaluation
  // commits (global greedy), lazy partition refreshes (offline TabularGreedy),
  // and cache reuse across remote commits (distributed nodes).

  /// Number of sample-level utility changes of task `j` in sample `s`.
  std::uint64_t sample_version(int s, model::TaskIndex j) const {
    return sample_version_[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(net_->task_count()) +
                           static_cast<std::size_t>(j)];
  }

  /// Aggregate version of task `j`: the sum of its per-sample counters (one
  /// read with S = 1, the global-greedy configuration).
  std::uint64_t task_version(model::TaskIndex j) const {
    return task_version_[static_cast<std::size_t>(j)];
  }

  /// Sum of the version counters of `tasks`. Versions only grow, so an
  /// unchanged sum certifies every individual version is unchanged.
  std::uint64_t version_sum(std::span<const model::TaskIndex> tasks) const;

  /// Total number of energy-changing commits so far.
  std::uint64_t commit_count() const { return commit_count_; }

  /// One row of a marginal in sample `s`: the utility delta of task `j` when
  /// `delta` energy is added on top of its current accumulation. Summing
  /// row_term over a policy's rows in row order reproduces `gain_in_sample`
  /// bit for bit, which lets callers cache per-row terms and refresh only the
  /// rows whose task version moved.
  double row_term(int s, model::TaskIndex j, double delta) const;

  /// Batched row_term: out[t] = row_term(s, rows.tasks[t], rows.delta[t])
  /// for every row, evaluated through the kernel layer when enabled
  /// (bit-identical either way). This is how cache builds price whole
  /// term panels in one call instead of one oracle round-trip per row.
  void row_terms(int s, const kernels::RowView& rows, double* out) const;

  /// Whether this engine latched the data-oriented kernel path at
  /// construction (util::kernels_enabled() at that moment).
  bool using_kernels() const { return use_kernels_; }

  /// Evaluation-effort counters, updated by the const oracle methods (thread
  /// safe: the initial panel builds evaluate rows in parallel).
  struct Stats {
    std::uint64_t row_terms = 0;  ///< per-(row, sample) utility-delta evaluations
    std::uint64_t marginals = 0;  ///< full marginal() oracle calls
    std::uint64_t commits = 0;    ///< energy-changing commits
  };
  Stats stats() const {
    return {row_term_count_.load(std::memory_order_relaxed),
            marginal_count_.load(std::memory_order_relaxed), commit_count_};
  }

 private:
  double gain_in_sample(int s, const kernels::RowView& rows) const;

  /// Network::weighted_task_utility through the SoA table when the kernel
  /// path is latched; bit-identical by the UtilityTable contract.
  double weighted_utility(model::TaskIndex j, double x) const {
    return use_kernels_ ? table_.weighted_utility(j, x)
                        : net_->weighted_task_utility(j, x);
  }

  const model::Network* net_;
  Config config_;
  kernels::UtilityTable table_;  // SoA utility columns for the kernel path
  bool use_kernels_ = false;     // latched once at construction
  // energy_[s * m + j]: accumulated relaxed energy of task j in sample s.
  std::vector<double> energy_;
  std::vector<std::uint64_t> sample_version_;  // [s * m + j] dirty counters
  std::vector<std::uint64_t> task_version_;    // per-task sums over samples
  std::uint64_t commit_count_ = 0;
  mutable std::atomic<std::uint64_t> row_term_count_{0};
  mutable std::atomic<std::uint64_t> marginal_count_{0};
};

}  // namespace haste::core
