#include "dist/event_queue.hpp"

#include <stdexcept>

namespace haste::dist {

void EventQueue::schedule(double time, Callback callback) {
  if (time < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  heap_.push(Entry{time, next_sequence_++, std::move(callback)});
}

void EventQueue::schedule_in(double delay, Callback callback) {
  schedule(now_ + delay, std::move(callback));
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // Copy out before pop: the callback may schedule new events.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.time;
  ++executed_;
  entry.callback();
  return true;
}

void EventQueue::run_until(double time) {
  while (!heap_.empty() && heap_.top().time <= time) run_next();
  if (now_ < time) now_ = time;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace haste::dist
