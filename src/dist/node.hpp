// Per-charger state machine of the distributed online algorithm (Alg. 3).
//
// A node plans with purely local knowledge: its own dominant task sets over
// the tasks it has heard of, the coverable-task lists its neighbors announced
// (HELLO messages), the VALUE announcements of undecided neighbors, and the
// UPDATE messages of committed ones. The shared color panel is derived by
// hashing the common seed (see MarginalEngine::panel_color), so no randomness
// is exchanged.
//
// The negotiation for one (slot, color) stage proceeds in synchronous rounds
// driven by the orchestrator (dist/online.cpp):
//   1. every undecided participant broadcasts its best marginal (VALUE);
//   2. a node whose (marginal, id) beats every undecided participating
//      neighbor commits: it adds the S-C tuple locally and broadcasts UPDATE;
//   3. receivers of UPDATE apply the remote commit and recompute.
// Marginals only shrink as commits accumulate (submodularity), so acting on
// a one-round-old neighbor value is safe — exactly the argument the paper
// uses to order the asynchronous executions.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/objective.hpp"
#include "dist/protocol.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::dist {

/// One charger participating in the distributed negotiation.
class ChargerNode {
 public:
  /// `mode` picks how stage marginals are evaluated: kIncremental keeps a
  /// term cache shared by all stage policies, keyed by (distinct stage task,
  /// relevant sample) and refreshed lazily via the engine's per-(task,
  /// sample) versions — plus per-policy upper bounds for lazy partition
  /// maxima — so a re-negotiation after a remote UPDATE touches only the
  /// dirtied columns of the policies still in contention; kRebuild keeps the
  /// whole-policy marginal cache stamped with the aggregate version sum (the
  /// reference path). The two are bit-identical.
  ChargerNode(const model::Network& net, model::ChargerIndex id,
              core::MarginalEngine::Config engine_config,
              core::TabularMode mode = core::TabularMode::kIncremental);

  model::ChargerIndex id() const { return id_; }

  /// Starts a new plan over `known_tasks` (the tasks released so far) with
  /// the given per-task already-harvested energies (may be empty = zeros).
  /// Returns the HELLO message announcing this node's coverable tasks.
  Message begin_plan(const std::vector<model::TaskIndex>& known_tasks,
                     std::span<const double> initial_energy);

  /// True if this node can cover at least one known task (otherwise it takes
  /// no part in the negotiation).
  bool has_work() const { return !dominant_.empty(); }

  /// Prepares the (slot, color) stage. Returns true if the node participates
  /// (has at least one policy with active tasks in the slot).
  bool begin_stage(model::SlotIndex slot, int color);

  /// True once this node has committed or gone passive for the stage.
  bool decided() const { return decided_; }

  /// The VALUE broadcast for this round; nullopt once decided. A node whose
  /// best marginal is not positive announces 0 and goes passive.
  std::optional<Message> make_value_message();

  /// Handles a received message (HELLO, VALUE, or UPDATE).
  void receive(const Message& message);

  /// Attempts to commit; returns the UPDATE broadcast on success.
  std::optional<Message> try_commit();

  /// Commits the current best unconditionally (no neighbor comparison):
  /// the sequential/ordered protocol of Theorem 6.1's proof, where chargers
  /// decide in a fixed global order and only announce. Returns the UPDATE
  /// broadcast, or nullopt when no policy has positive marginal.
  std::optional<Message> force_commit();

  /// Writes this node's sampled selections (final color per slot, hashed
  /// from `seed`) into `schedule` for slots in [first_slot, horizon),
  /// clearing those slots first.
  void write_schedule(model::Schedule& schedule, model::SlotIndex first_slot) const;

  /// The planner's local expected utility estimate (diagnostics).
  double local_expected_value() const;

  /// Speculative pre-provisioning (predictive scheduling): prices the
  /// initial plan-column term of each coverable task in `tasks` at the
  /// zero-harvest base and deposits it into the cross-plan term cache, so a
  /// later begin_plan over those tasks hits the cache instead of paying a
  /// cold row_term. Entries already priced are never overwritten (they are
  /// exact for their own base), and a speculative entry is consulted only
  /// when the task's actual base energy is bitwise 0.0 — a wrong guess
  /// costs nothing but the speculation. Terms are computed through the
  /// network objective, which is bit-identical to the engine's row_term by
  /// the UtilityTable contract, so hits never change schedule bits — only
  /// row_eval counts. No-op under kRebuild (no term cache).
  void prewarm_columns(const std::vector<model::TaskIndex>& tasks);

  /// Evaluation counters of the current plan's engine (zeroed at every
  /// begin_plan, since the engine is rebuilt per plan); all-zero before the
  /// first plan. Lets the online driver charge row_term work to re-plans.
  core::MarginalEngine::Stats engine_stats() const {
    return engine_.has_value() ? engine_->stats() : core::MarginalEngine::Stats{};
  }

 private:
  void recompute_best();
  double refresh_policy(std::size_t q);  ///< lazily refreshed marginal (kIncremental)
  Message commit_current();  ///< commits best_policy_ and builds the UPDATE
  bool neighbor_participates(model::ChargerIndex j, model::SlotIndex slot) const;

  const model::Network* net_;
  model::ChargerIndex id_;
  core::MarginalEngine::Config engine_config_;
  core::TabularMode mode_;

  std::vector<core::DominantTaskSet> dominant_;
  std::optional<core::MarginalEngine> engine_;
  model::SlotIndex plan_first_slot_ = 0;

  // What each neighbor announced in its HELLO: coverable known tasks.
  std::map<model::ChargerIndex, std::vector<model::TaskIndex>> neighbor_tasks_;

  // Stage state.
  model::SlotIndex stage_slot_ = 0;
  int stage_color_ = 0;
  std::vector<core::Policy> stage_policies_;
  // Panel samples whose color at (id_, stage_slot_) matches stage_color_ —
  // the only samples a stage marginal depends on (ascending, so lazy
  // refreshes re-sum in the engine's evaluation order).
  std::vector<int> stage_samples_;
  // Per stage policy: the last exactly-computed marginal. Under kRebuild the
  // value is stamped with the engine's task-version sum at evaluation time
  // (versions only grow and a marginal depends on the engine state only
  // through those tasks' energies, so an unchanged stamp certifies the
  // cached value is exact). Under kIncremental the value doubles as an upper
  // bound for lazy partition maxima (marginals only shrink), and the actual
  // pricing lives in the shared stage columns below.
  struct PolicyTermCache {
    double marginal = 0.0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };
  std::vector<PolicyTermCache> stage_cache_;
  // kIncremental pricing, shared across policies AND stages of one plan: the
  // per-slot energy a task would receive is orientation- and
  // slot-independent, so every policy of every stage covering task j prices
  // the same utility-delta term. Terms are keyed by (distinct coverable
  // task, sample) — a "column" — and stamped with the engine's (task,
  // sample) version; a term priced in one stage stays fresh for later stages
  // until a commit actually moves that task's utility in that sample, and a
  // remote UPDATE re-prices only the columns it dirtied, once, for all
  // policies at once.
  std::vector<model::TaskIndex> plan_col_task_;  // distinct coverable tasks
  std::vector<double> plan_col_delta_;           // shared per-slot energy per column
  std::vector<std::ptrdiff_t> plan_col_of_;      // [task] -> column, or -1
  std::vector<std::size_t> stage_policy_col_;    // row -> column, policies concatenated
  std::vector<std::size_t> stage_policy_row0_;   // [q]: first row of policy q
  std::vector<double> plan_terms_;               // [col * samples + s]
  std::vector<std::uint64_t> plan_versions_;     // same layout as `plan_terms_`
  int best_policy_ = -1;
  double best_marginal_ = 0.0;
  bool decided_ = true;
  std::map<model::ChargerIndex, double> neighbor_values_;  // latest VALUE
  std::map<model::ChargerIndex, bool> neighbor_decided_;

  // Selections Q_i restricted to this node: per slot, per color, the chosen
  // policy (if any).
  std::map<model::SlotIndex, std::vector<std::optional<core::Policy>>> selections_;

  // Last committed orientation per color (switch-avoiding tie-break).
  std::vector<std::optional<double>> previous_orientation_;

  // Cross-plan reuse caches, effective when the same node object serves
  // consecutive re-plans (OnlineConfig::reuse_nodes). Both memoize pure
  // functions, so hitting them is bit-identical to recomputing:
  //   - dominant sets depend only on (net, id, known_tasks);
  //   - a column's initial term row_term(0, task, delta) depends only on the
  //     task's harvested base energy (delta is fixed per column — the
  //     orientation- and slot-independent per-slot energy).
  std::vector<model::TaskIndex> cached_known_;  // known_tasks of dominant_
  bool dominant_cached_ = false;
  std::vector<std::uint64_t> term_cache_base_;  // [task]: bit pattern of base
  std::vector<double> term_cache_term_;         // [task]: cached initial term
  std::vector<char> term_cache_valid_;          // [task]
};

}  // namespace haste::dist
