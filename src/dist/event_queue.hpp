// Discrete-event simulation core for the distributed online scenario.
//
// A deterministic priority queue of timestamped callbacks: ties are broken
// by insertion order (FIFO), so simulations are reproducible. Time is in
// slot units (double) — negotiation rounds within a rescheduling window get
// fractional timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace haste::dist {

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute `time` (must be >= now()).
  void schedule(double time, Callback callback);

  /// Schedules `callback` `delay` after now().
  void schedule_in(double delay, Callback callback);

  /// Executes the earliest event; returns false if the queue is empty.
  bool run_next();

  /// Runs events until the queue is empty or `time` is passed (events at
  /// exactly `time` are executed).
  void run_until(double time);

  /// Runs everything.
  void run_all();

  /// Current simulation time (the timestamp of the last executed event).
  double now() const { return now_; }

  /// Number of pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace haste::dist
