// Control messages of the distributed online algorithm (Section 6.1):
//
//   msg(ID, TIM, COL, CMD, dF*_i(Q_i), e^{k*}_i)
//
// VALUE messages announce a charger's best marginal for the current
// (slot, color) stage; UPDATE messages announce a committed scheduling
// policy so neighbors can refresh their local views.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/charger.hpp"
#include "model/task.hpp"

namespace haste::dist {

/// CMD field of a control message.
enum class Command {
  kValue,   ///< announcement of the current best marginal (paper: CMD = NULL)
  kUpdate,  ///< committed selection (paper: CMD = UPD)
  kHello,   ///< coverable-task announcement at plan start (the paper's
            ///< "exchange the information of dominant task sets" step)
};

/// The policy payload e^{k*}_i: enough for a neighbor to update its local
/// energy view — which tasks the sender will serve in the slot and the
/// energy each receives per slot.
struct PolicyAnnouncement {
  double orientation = 0.0;
  std::vector<model::TaskIndex> tasks;
  std::vector<double> slot_energy;  ///< J per slot, aligned with `tasks`
};

/// A control message exchanged between neighboring chargers.
struct Message {
  model::ChargerIndex sender = -1;  ///< ID
  model::SlotIndex slot = 0;        ///< TIM
  int color = 0;                    ///< COL
  Command command = Command::kValue;
  double marginal = 0.0;            ///< dF*_i(Q_i)
  PolicyAnnouncement policy;        ///< e^{k*}_i

  /// Approximate wire size in bytes (for communication-cost accounting):
  /// fixed header plus 12 bytes per task entry.
  std::size_t wire_size() const;

  /// One-line rendering for debug logs.
  std::string describe() const;
};

}  // namespace haste::dist
