#include "dist/protocol.hpp"

#include <sstream>

namespace haste::dist {

std::size_t Message::wire_size() const {
  // sender(4) + slot(4) + color(2) + command(1) + marginal(8) +
  // orientation(8) + count(2) + per-task (id 4 + energy 8).
  return 29 + policy.tasks.size() * 12;
}

std::string Message::describe() const {
  std::ostringstream out;
  const char* cmd = command == Command::kValue   ? "VALUE"
                    : command == Command::kUpdate ? "UPD"
                                                  : "HELLO";
  out << "msg(id=" << sender << ", k=" << slot << ", c=" << color << ", " << cmd
      << ", dF=" << marginal << ", |tasks|=" << policy.tasks.size() << ")";
  return out.str();
}

}  // namespace haste::dist
