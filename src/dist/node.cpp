#include "dist/node.hpp"

#include <algorithm>
#include <bit>

namespace haste::dist {

namespace {

constexpr double kTieSlack = 1e-12;

}  // namespace

ChargerNode::ChargerNode(const model::Network& net, model::ChargerIndex id,
                         core::MarginalEngine::Config engine_config,
                         core::TabularMode mode)
    : net_(&net), id_(id), engine_config_(engine_config), mode_(mode) {
  previous_orientation_.assign(static_cast<std::size_t>(std::max(1, engine_config.colors)),
                               std::nullopt);
}

Message ChargerNode::begin_plan(const std::vector<model::TaskIndex>& known_tasks,
                                std::span<const double> initial_energy) {
  // Dominant sets are a pure function of (net, id, known_tasks); consecutive
  // re-plans of a reused node usually extend `known_tasks` (recompute) but
  // failure-triggered re-plans repeat it verbatim (hit).
  if (!dominant_cached_ || cached_known_ != known_tasks) {
    dominant_ = core::extract_dominant_sets(*net_, id_, known_tasks);
    cached_known_ = known_tasks;
    dominant_cached_ = true;
  }
  engine_.emplace(*net_, engine_config_, initial_energy);
  selections_.clear();
  neighbor_tasks_.clear();
  std::fill(previous_orientation_.begin(), previous_orientation_.end(), std::nullopt);

  // HELLO: announce which known tasks this charger can cover, with the
  // per-slot energy it would deliver (lets neighbors predict participation).
  Message hello;
  hello.sender = id_;
  hello.command = Command::kHello;
  for (model::TaskIndex j : known_tasks) {
    const double p = net_->potential_power(id_, j);
    if (p > 0.0) {
      hello.policy.tasks.push_back(j);
      hello.policy.slot_energy.push_back(p * net_->time().slot_seconds);
    }
  }

  // Plan-level column cache: one column per coverable task, shared by every
  // policy of every stage (the per-slot energy is orientation- and
  // slot-independent). All samples share the initial energies, so one
  // row_term per column is exact for the whole panel (replication), and
  // version 0 matches the engine's untouched counters.
  plan_col_task_.clear();
  plan_col_delta_.clear();
  plan_col_of_.assign(static_cast<std::size_t>(net_->task_count()), -1);
  if (mode_ == core::TabularMode::kIncremental) {
    for (std::size_t t = 0; t < hello.policy.tasks.size(); ++t) {
      plan_col_of_[static_cast<std::size_t>(hello.policy.tasks[t])] =
          static_cast<std::ptrdiff_t>(plan_col_task_.size());
      plan_col_task_.push_back(hello.policy.tasks[t]);
      plan_col_delta_.push_back(hello.policy.slot_energy[t]);
    }
    const auto samples = static_cast<std::size_t>(engine_->samples());
    plan_terms_.assign(plan_col_task_.size() * samples, 0.0);
    plan_versions_.assign(plan_col_task_.size() * samples, 0);
    if (term_cache_valid_.size() != static_cast<std::size_t>(net_->task_count())) {
      term_cache_base_.assign(static_cast<std::size_t>(net_->task_count()), 0);
      term_cache_term_.assign(static_cast<std::size_t>(net_->task_count()), 0.0);
      term_cache_valid_.assign(static_cast<std::size_t>(net_->task_count()), 0);
    }
    for (std::size_t col = 0; col < plan_col_task_.size(); ++col) {
      const auto j = static_cast<std::size_t>(plan_col_task_[col]);
      // row_term(0, j, delta) on a fresh engine is a pure function of the
      // task's harvested base energy (delta never changes for a column), so
      // a bitwise-equal base since the previous plan reuses the cached term
      // — the re-plan's dominant row_term cost when energies are settled.
      const double base_energy = j < initial_energy.size() ? initial_energy[j] : 0.0;
      const std::uint64_t base_bits = std::bit_cast<std::uint64_t>(base_energy);
      double term;
      if (term_cache_valid_[j] != 0 && term_cache_base_[j] == base_bits) {
        term = term_cache_term_[j];
      } else {
        term = engine_->row_term(0, plan_col_task_[col], plan_col_delta_[col]);
        term_cache_base_[j] = base_bits;
        term_cache_term_[j] = term;
        term_cache_valid_[j] = 1;
      }
      for (std::size_t s = 0; s < samples; ++s) plan_terms_[col * samples + s] = term;
    }
  }
  return hello;
}

void ChargerNode::prewarm_columns(const std::vector<model::TaskIndex>& tasks) {
  if (mode_ != core::TabularMode::kIncremental) return;
  const auto m = static_cast<std::size_t>(net_->task_count());
  if (term_cache_valid_.size() != m) {
    term_cache_base_.assign(m, 0);
    term_cache_term_.assign(m, 0.0);
    term_cache_valid_.assign(m, 0);
  }
  for (model::TaskIndex task : tasks) {
    const auto j = static_cast<std::size_t>(task);
    if (term_cache_valid_[j] != 0) continue;  // real entries stay authoritative
    const double p = net_->potential_power(id_, task);
    if (p <= 0.0) continue;  // not coverable: never becomes a plan column
    const double delta = p * net_->time().slot_seconds;
    // Matches row_term(0, task, delta) on a fresh engine with zero base:
    // weighted_utility(delta) - weighted_utility(0), computed through the
    // scalar objective (bit-identical to the kernel table by contract).
    const double term = net_->weighted_task_utility(task, delta) -
                        net_->weighted_task_utility(task, 0.0);
    term_cache_base_[j] = std::bit_cast<std::uint64_t>(0.0);
    term_cache_term_[j] = term;
    term_cache_valid_[j] = 1;
  }
}

bool ChargerNode::begin_stage(model::SlotIndex slot, int color) {
  stage_slot_ = slot;
  stage_color_ = color;
  stage_policies_ = core::make_slot_policies(*net_, id_, dominant_, slot);
  stage_cache_.assign(stage_policies_.size(), PolicyTermCache{});
  stage_samples_.clear();
  for (int s = 0; s < engine_->samples(); ++s) {
    if (core::MarginalEngine::panel_color(engine_config_.seed, s, id_, slot,
                                          engine_->colors()) == color) {
      stage_samples_.push_back(s);
    }
  }
  // Row -> plan-column map for this stage's policies. Dominant-set tasks are
  // always in the HELLO coverable set, but register stragglers defensively
  // with never-priced stamps (engine versions can be anything by now).
  stage_policy_col_.clear();
  stage_policy_row0_.assign(stage_policies_.size(), 0);
  if (mode_ == core::TabularMode::kIncremental) {
    const auto samples = static_cast<std::size_t>(engine_->samples());
    for (std::size_t q = 0; q < stage_policies_.size(); ++q) {
      stage_policy_row0_[q] = stage_policy_col_.size();
      const core::Policy& policy = stage_policies_[q];
      for (std::size_t t = 0; t < policy.tasks.size(); ++t) {
        const model::TaskIndex task = policy.tasks[t];
        const double delta = policy.slot_energy[t];
        std::ptrdiff_t col = plan_col_of_[static_cast<std::size_t>(task)];
        if (col >= 0 && plan_col_delta_[static_cast<std::size_t>(col)] != delta) {
          // Tardy rows carry a deadline-discounted slot_energy that deviates
          // from the HELLO column's base delta; a column's cached terms are
          // only reusable at the delta they were priced with, so mismatched
          // rows get overflow columns keyed (task, delta). Linear scan: only
          // tardy rows reach here, and each tardy (task, slot) pair
          // contributes at most one distinct delta per plan.
          col = -1;
          for (std::size_t c = 0; c < plan_col_task_.size(); ++c) {
            if (plan_col_task_[c] == task && plan_col_delta_[c] == delta) {
              col = static_cast<std::ptrdiff_t>(c);
              break;
            }
          }
        }
        if (col < 0) {
          col = static_cast<std::ptrdiff_t>(plan_col_task_.size());
          if (plan_col_of_[static_cast<std::size_t>(task)] < 0) {
            plan_col_of_[static_cast<std::size_t>(task)] = col;
          }
          plan_col_task_.push_back(task);
          plan_col_delta_.push_back(delta);
          plan_terms_.resize(plan_terms_.size() + samples, 0.0);
          plan_versions_.resize(plan_versions_.size() + samples, ~std::uint64_t{0});
        }
        stage_policy_col_.push_back(static_cast<std::size_t>(col));
      }
    }
  }
  neighbor_values_.clear();
  neighbor_decided_.clear();
  if (stage_policies_.empty()) {
    decided_ = true;
    best_policy_ = -1;
    best_marginal_ = 0.0;
    return false;
  }
  decided_ = false;
  recompute_best();
  return true;
}

double ChargerNode::refresh_policy(std::size_t q) {
  const core::Policy& policy = stage_policies_[q];
  const std::size_t rows = policy.tasks.size();
  const auto samples = static_cast<std::size_t>(engine_->samples());
  const std::size_t* row_col = stage_policy_col_.data() + stage_policy_row0_[q];
  double total = 0.0;
  for (std::size_t si = 0; si < stage_samples_.size(); ++si) {
    const int s = stage_samples_[si];
    double inner = 0.0;
    for (std::size_t t = 0; t < rows; ++t) {
      const std::size_t idx = row_col[t] * samples + static_cast<std::size_t>(s);
      const std::uint64_t version = engine_->sample_version(s, policy.tasks[t]);
      if (plan_versions_[idx] != version) {
        plan_terms_[idx] = engine_->row_term(s, policy.tasks[t], policy.slot_energy[t]);
        plan_versions_[idx] = version;
      }
      inner += plan_terms_[idx];
    }
    total += inner;
  }
  return total / static_cast<double>(engine_->samples());
}

void ChargerNode::recompute_best() {
  best_policy_ = -1;
  best_marginal_ = 0.0;
  const std::optional<double>& previous =
      previous_orientation_[static_cast<std::size_t>(stage_color_)];
  bool best_is_previous = false;
  for (std::size_t q = 0; q < stage_policies_.size(); ++q) {
    const core::Policy& policy = stage_policies_[q];
    double m = 0.0;
    if (mode_ == core::TabularMode::kIncremental) {
      PolicyTermCache& cache = stage_cache_[q];
      if (cache.valid) {
        // Lazy partition maxima: energies only grow and utilities are
        // concave, so the last refreshed marginal is an upper bound on the
        // current one. A policy whose bound cannot trigger either acceptance
        // branch below leaves the fold state untouched — skip it without
        // touching its rows.
        const double bound = cache.marginal;
        const bool can_alter =
            best_policy_ < 0
                ? bound > 0.0
                : bound >= best_marginal_ * (1.0 - kTieSlack) - kTieSlack;
        if (!can_alter) continue;
      }
      // Re-sum the shared column chain, re-pricing only the columns whose
      // (task, sample) version moved since they were last priced.
      m = refresh_policy(q);
      cache.marginal = m;
      cache.valid = true;
    } else {
      // Reuse the cached marginal when none of the policy's tasks changed
      // since it was computed (checking versions is O(|tasks|) counter reads;
      // a re-evaluation is utility-function calls per panel sample).
      PolicyTermCache& cache = stage_cache_[q];
      const std::uint64_t stamp = engine_->version_sum(policy.tasks);
      if (!cache.valid || cache.stamp != stamp) {
        cache.marginal = engine_->marginal(id_, stage_slot_, policy, stage_color_);
        cache.stamp = stamp;
        cache.valid = true;
      }
      m = cache.marginal;
    }
    const bool is_previous = previous.has_value() && policy.orientation == *previous;
    bool better = false;
    if (best_policy_ < 0) {
      better = m > 0.0;
    } else if (m > best_marginal_ * (1.0 + kTieSlack) + kTieSlack) {
      better = true;
    } else if (is_previous && !best_is_previous &&
               m >= best_marginal_ * (1.0 - kTieSlack) - kTieSlack) {
      better = true;  // tie: prefer keeping the current orientation
    }
    if (better) {
      best_policy_ = static_cast<int>(q);
      best_marginal_ = m;
      best_is_previous = is_previous;
    }
  }
}

std::optional<Message> ChargerNode::make_value_message() {
  if (decided_) return std::nullopt;
  Message msg;
  msg.sender = id_;
  msg.slot = stage_slot_;
  msg.color = stage_color_;
  msg.command = Command::kValue;
  msg.marginal = best_policy_ >= 0 ? best_marginal_ : 0.0;
  if (best_policy_ < 0) {
    // Nothing worth selecting: announce zero so neighbors stop waiting, then
    // go passive for this stage.
    decided_ = true;
  }
  return msg;
}

void ChargerNode::receive(const Message& message) {
  switch (message.command) {
    case Command::kHello: {
      neighbor_tasks_[message.sender] = message.policy.tasks;
      return;
    }
    case Command::kValue: {
      if (message.slot != stage_slot_ || message.color != stage_color_) return;
      neighbor_values_[message.sender] = message.marginal;
      if (message.marginal <= 0.0) neighbor_decided_[message.sender] = true;
      return;
    }
    case Command::kUpdate: {
      // Apply the neighbor's committed tuple to the local view and
      // re-evaluate; the stage check matters because UPDATEs always concern
      // the current stage, but be defensive.
      core::Policy policy;
      policy.orientation = message.policy.orientation;
      policy.tasks = message.policy.tasks;
      policy.slot_energy = message.policy.slot_energy;
      engine_->apply_remote_commit(message.sender, message.slot, policy, message.color);
      neighbor_decided_[message.sender] = true;
      if (!decided_ && message.slot == stage_slot_ && message.color == stage_color_) {
        recompute_best();
      }
      return;
    }
  }
}

bool ChargerNode::neighbor_participates(model::ChargerIndex j, model::SlotIndex slot) const {
  const auto it = neighbor_tasks_.find(j);
  if (it == neighbor_tasks_.end()) return false;
  // Mirror of the row-construction rule in make_slot_policies: a neighbor
  // has a stage policy iff some coverable task is active AND not dropped by
  // the deadline discount (zero tardiness factor = hard-tardy or
  // infeasible). Waiting on an `active`-only basis deadlocked the stage on
  // deadline instances — a fully-pruned neighbor never speaks, everyone
  // else kept waiting for its value, and the round cap fired.
  return std::any_of(it->second.begin(), it->second.end(), [&](model::TaskIndex t) {
    return net_->tasks()[static_cast<std::size_t>(t)].active(slot) &&
           net_->tardiness_factor(t, slot) > 0.0;
  });
}

std::optional<Message> ChargerNode::try_commit() {
  if (decided_ || best_policy_ < 0) return std::nullopt;
  for (model::ChargerIndex j : net_->neighbors(id_)) {
    if (!neighbor_participates(j, stage_slot_)) continue;
    const auto decided_it = neighbor_decided_.find(j);
    if (decided_it != neighbor_decided_.end() && decided_it->second) continue;
    const auto value_it = neighbor_values_.find(j);
    if (value_it == neighbor_values_.end()) return std::nullopt;  // not heard yet
    const double theirs = value_it->second;
    // Tie-break by id: the lower id wins equal marginals.
    if (theirs > best_marginal_ || (theirs == best_marginal_ && j < id_)) {
      return std::nullopt;
    }
  }

  // Local maximum: commit the S-C tuple.
  return commit_current();
}

std::optional<Message> ChargerNode::force_commit() {
  if (decided_) return std::nullopt;
  decided_ = true;
  if (best_policy_ < 0) return std::nullopt;
  return commit_current();
}

Message ChargerNode::commit_current() {
  const core::Policy& policy = stage_policies_[static_cast<std::size_t>(best_policy_)];
  // Under kIncremental, best_marginal_ came from an exactly-refreshed cache
  // (recompute_best runs after every engine change), so the realized gain is
  // already known and commit can skip re-evaluating it.
  if (mode_ == core::TabularMode::kIncremental) {
    engine_->commit_no_gain(id_, stage_slot_, policy.tasks, policy.slot_energy,
                            stage_color_);
  } else {
    engine_->commit(id_, stage_slot_, policy, stage_color_);
  }
  auto& per_color = selections_[stage_slot_];
  per_color.resize(static_cast<std::size_t>(engine_->colors()));
  per_color[static_cast<std::size_t>(stage_color_)] = policy;
  previous_orientation_[static_cast<std::size_t>(stage_color_)] = policy.orientation;
  decided_ = true;

  Message msg;
  msg.sender = id_;
  msg.slot = stage_slot_;
  msg.color = stage_color_;
  msg.command = Command::kUpdate;
  msg.marginal = best_marginal_;
  msg.policy.orientation = policy.orientation;
  msg.policy.tasks = policy.tasks;
  msg.policy.slot_energy = policy.slot_energy;
  return msg;
}

void ChargerNode::write_schedule(model::Schedule& schedule,
                                 model::SlotIndex first_slot) const {
  for (model::SlotIndex k = first_slot; k < schedule.horizon(); ++k) {
    schedule.clear(id_, k);
  }
  for (const auto& [slot, per_color] : selections_) {
    if (slot < first_slot) continue;
    const int c = core::MarginalEngine::final_color(engine_config_.seed, id_, slot,
                                                    engine_->colors());
    if (static_cast<std::size_t>(c) < per_color.size() &&
        per_color[static_cast<std::size_t>(c)].has_value()) {
      schedule.assign(id_, slot, per_color[static_cast<std::size_t>(c)]->orientation);
    }
  }
}

double ChargerNode::local_expected_value() const {
  return engine_.has_value() ? engine_->expected_value() : 0.0;
}

}  // namespace haste::dist
