#include "dist/online.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "baseline/greedy_cover.hpp"
#include "baseline/greedy_utility.hpp"
#include "dist/bus.hpp"
#include "dist/event_queue.hpp"
#include "dist/node.hpp"
#include "obs/obs.hpp"

namespace haste::dist {

namespace {

/// Copies the assignments of `source` into `target` for every *alive*
/// charger, for slots in [first_slot, horizon): target slots are cleared
/// first so the new plan fully replaces the old one from `first_slot` on.
void splice_plan(model::Schedule& target, const model::Schedule& source,
                 model::SlotIndex first_slot, const std::vector<bool>& alive) {
  for (model::ChargerIndex i = 0; i < target.charger_count(); ++i) {
    if (!alive[static_cast<std::size_t>(i)]) continue;
    for (model::SlotIndex k = first_slot; k < target.horizon(); ++k) {
      const model::SlotAssignment a = source.assignment(i, k);
      if (a.has_value()) {
        target.assign(i, k, *a);
      } else {
        target.clear(i, k);
      }
    }
  }
}

/// Sums the per-plan engine evaluation counters over a fleet (each node's
/// engine is rebuilt at begin_plan, so the totals are this re-plan's cost).
core::MarginalEngine::Stats fleet_engine_stats(const std::vector<ChargerNode*>& nodes) {
  core::MarginalEngine::Stats total;
  for (const ChargerNode* node : nodes) {
    const core::MarginalEngine::Stats stats = node->engine_stats();
    total.row_terms += stats.row_terms;
    total.marginals += stats.marginals;
    total.commits += stats.commits;
  }
  return total;
}

/// Wires the alive fleet onto a fresh bus (alive-restricted neighborhoods)
/// and runs the plan-start HELLO round.
void wire_and_hello(const model::Network& net, const std::vector<ChargerNode*>& nodes,
                    const std::vector<bool>& alive,
                    const std::vector<model::TaskIndex>& known,
                    std::span<const double> initial_energy, BroadcastBus& bus) {
  for (ChargerNode* node : nodes) {
    bus.register_node(node->id(), [node](const Message& m) { node->receive(m); });
    std::vector<model::ChargerIndex> neighbors;
    for (model::ChargerIndex j : net.neighbors(node->id())) {
      if (alive[static_cast<std::size_t>(j)]) neighbors.push_back(j);
    }
    bus.set_neighbors(node->id(), std::move(neighbors));
  }
  for (ChargerNode* node : nodes) {
    bus.broadcast(node->begin_plan(known, initial_energy));
  }
  bus.flush_round();
}

/// Runs the ordered token protocol for one re-plan: each charger, in
/// ascending ID order (one token round per color), greedily selects policies
/// for all its slots and broadcasts the selections; receivers fold them into
/// their local views. Equivalent in guarantee to the election protocol (the
/// order of a locally greedy run does not affect its 1/2 bound), but with
/// one broadcast per selection instead of repeated VALUE elections.
/// `nodes` is the alive fleet in ascending id order, owned by the caller —
/// persistent across re-plans under OnlineConfig::reuse_nodes.
void negotiate_sequential(const model::Network& net, const OnlineConfig& config,
                          const std::vector<ChargerNode*>& nodes,
                          const std::vector<model::TaskIndex>& known,
                          std::span<const double> initial_energy,
                          model::SlotIndex plan_start, const std::vector<bool>& alive,
                          model::Schedule& executed, OnlineResult& result) {
  BroadcastBus bus;
  wire_and_hello(net, nodes, alive, known, initial_energy, bus);

  const int colors = std::max(1, config.colors);
  std::vector<ChargerNode*> workers;
  for (ChargerNode* node : nodes) {
    if (node->has_work()) workers.push_back(node);
  }

  for (int c = 0; c < colors; ++c) {
    for (ChargerNode* node : workers) {  // ascending id: nodes are built in order
      ++result.rounds;                   // one token turn
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        if (!node->begin_stage(k, c)) continue;
        if (auto msg = node->force_commit()) bus.broadcast(*msg);
      }
      bus.flush_round();  // successors see this node's selections
    }
  }

  for (ChargerNode* node : workers) node->write_schedule(executed, plan_start);
  for (ChargerNode* node : nodes) {
    if (!node->has_work()) {
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        executed.clear(node->id(), k);
      }
    }
  }
  result.messages += bus.stats().broadcasts;
  result.deliveries += bus.stats().deliveries;
  result.message_bytes += bus.stats().bytes;
}

/// Runs the full HASTE negotiation for one re-plan. Writes the agreed plan
/// into `executed` from `plan_start` on and accumulates counters. `nodes` is
/// the alive fleet in ascending id order, owned by the caller.
void negotiate_haste(const model::Network& net, const OnlineConfig& config,
                     const std::vector<ChargerNode*>& nodes,
                     const std::vector<model::TaskIndex>& known,
                     std::span<const double> initial_energy,
                     model::SlotIndex plan_start, const std::vector<bool>& alive,
                     model::Schedule& executed, OnlineResult& result) {
  BroadcastBus bus;
  // Plan start: everyone announces its coverable known tasks (HELLO).
  wire_and_hello(net, nodes, alive, known, initial_energy, bus);

  // The engine's color count may have been clamped (colors < 1 -> 1).
  const int colors = std::max(1, config.colors);

  std::vector<ChargerNode*> workers;
  for (ChargerNode* node : nodes) {
    if (node->has_work()) workers.push_back(node);
  }

  for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
    for (int c = 0; c < colors; ++c) {
      std::vector<ChargerNode*> participants;
      for (ChargerNode* node : workers) {
        if (node->begin_stage(k, c)) participants.push_back(node);
      }
      if (participants.empty()) continue;

      const std::size_t round_cap = participants.size() + 3;
      std::size_t stage_rounds = 0;
      for (;;) {
        bool any_undecided = false;
        for (ChargerNode* node : participants) {
          if (!node->decided()) any_undecided = true;
        }
        if (!any_undecided) break;
        if (++stage_rounds > round_cap) {
          throw std::logic_error("online negotiation failed to converge");
        }
        ++result.rounds;
        for (ChargerNode* node : participants) {
          if (auto msg = node->make_value_message()) bus.broadcast(*msg);
        }
        bus.flush_round();
        for (ChargerNode* node : participants) {
          if (auto msg = node->try_commit()) bus.broadcast(*msg);
        }
        bus.flush_round();
      }
    }
  }

  for (ChargerNode* node : workers) node->write_schedule(executed, plan_start);
  // Chargers without work keep (persist) their previous orientation — their
  // schedule rows beyond plan_start are cleared so stale plans do not execute.
  for (ChargerNode* node : nodes) {
    if (!node->has_work()) {
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        executed.clear(node->id(), k);
      }
    }
  }

  result.messages += bus.stats().broadcasts;
  result.deliveries += bus.stats().deliveries;
  result.message_bytes += bus.stats().bytes;
}

}  // namespace

OnlineSession::OnlineSession(const model::Network& net, const OnlineConfig& config)
    : net_(net),
      config_(config),
      alive_(static_cast<std::size_t>(net.charger_count()), true) {
  result_.schedule = model::Schedule(net.charger_count(), net.horizon());
  if (config_.predictor.enabled) {
    predictor_ = std::make_unique<predict::Predictor>(net_, config_.predictor);
  }
}

OnlineSession::~OnlineSession() = default;  // ChargerNode is complete here

std::size_t OnlineSession::alive_chargers() const {
  return static_cast<std::size_t>(std::count(alive_.begin(), alive_.end(), true));
}

void OnlineSession::check_event(model::SlotIndex slot) const {
  if (finished_) {
    throw std::logic_error("OnlineSession: event after finish()");
  }
  if (slot < last_event_slot_) {
    throw std::invalid_argument(
        "OnlineSession: event slot " + std::to_string(slot) +
        " regresses behind slot " + std::to_string(last_event_slot_));
  }
}

const NegotiationRecord* OnlineSession::on_arrival(
    model::SlotIndex slot, const std::vector<model::TaskIndex>& tasks) {
  check_event(slot);
  for (model::TaskIndex j : tasks) {
    if (j < 0 || j >= net_.task_count()) {
      throw std::invalid_argument("OnlineSession: task index " + std::to_string(j) +
                                  " out of range");
    }
    if (std::binary_search(known_.begin(), known_.end(), j) ||
        std::find(pending_.begin(), pending_.end(), j) != pending_.end()) {
      throw std::invalid_argument("OnlineSession: task " + std::to_string(j) +
                                  " released twice");
    }
  }
  last_event_slot_ = slot;
  if (predictor_ != nullptr &&
      predictor_->on_arrival(slot, tasks) != predict::CadenceAction::kReplanNow) {
    // Deferred: the batch joins the pending set and the negotiation it would
    // have triggered is skipped. Speculatively price its plan columns (and
    // those of any other predicted-hot unknown task) so the eventual re-plan
    // starts warm.
    pending_.insert(pending_.end(), tasks.begin(), tasks.end());
    predictor_->note_skipped();
    prewarm(tasks);
    return nullptr;
  }
  flush_pending();
  known_.insert(known_.end(), tasks.begin(), tasks.end());
  std::sort(known_.begin(), known_.end());
  return replan(slot, ReplanTrigger::kArrival);
}

const NegotiationRecord* OnlineSession::on_failure(model::ChargerIndex charger,
                                                   model::SlotIndex slot) {
  check_event(slot);
  if (charger < 0 || charger >= net_.charger_count()) {
    throw std::invalid_argument("OnlineSession: charger index " +
                                std::to_string(charger) + " out of range");
  }
  last_event_slot_ = slot;
  if (!alive_[static_cast<std::size_t>(charger)]) return nullptr;
  alive_[static_cast<std::size_t>(charger)] = false;
  result_.schedule.disable_from(charger, slot);
  if (predictor_ != nullptr) {
    // A failure is an unpredicted disruption: back to reactive cadence, and
    // any deferred arrivals join the recovery negotiation.
    predictor_->on_failure();
    flush_pending();
  }
  // Survivors re-plan to cover for the lost charger.
  return replan(slot, ReplanTrigger::kFailure);
}

OnlineResult OnlineSession::finish() {
  if (finished_) throw std::logic_error("OnlineSession: finish() called twice");
  if (!pending_.empty()) {
    // Deferred arrivals must still be scheduled: one final negotiation at
    // the last event slot (same tau delay as any re-plan).
    flush_pending();
    replan(last_event_slot_, ReplanTrigger::kArrival);
  }
  finished_ = true;
  result_.evaluation = core::evaluate_schedule(net_, result_.schedule);
  if (predictor_ != nullptr) {
    result_.predictor = predictor_->stats();
    result_.replans_skipped = result_.predictor.replans_skipped;
  }
  return std::move(result_);
}

void OnlineSession::flush_pending() {
  if (pending_.empty()) return;
  known_.insert(known_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(known_.begin(), known_.end());
}

void OnlineSession::prewarm(const std::vector<model::TaskIndex>& batch) {
  if (predictor_ == nullptr || !config_.predictor.prewarm) return;
  // Pre-provisioning targets the persistent fleet's plan-column caches;
  // without node reuse (or with a non-negotiating strategy) there is no
  // warm state to seed.
  if (!config_.reuse_nodes) return;
  if (config_.strategy != OnlineStrategy::kHaste &&
      config_.strategy != OnlineStrategy::kHasteSequential) {
    return;
  }
  std::vector<model::TaskIndex> unknown;
  for (model::TaskIndex j = 0; j < net_.task_count(); ++j) {
    if (!std::binary_search(known_.begin(), known_.end(), j)) unknown.push_back(j);
  }
  std::vector<model::TaskIndex> candidates = predictor_->hot_tasks(unknown);
  candidates.insert(candidates.end(), batch.begin(), batch.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  if (candidates.empty()) return;
  for (std::size_t i = 0; i < persistent_nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    if (persistent_nodes_[i] != nullptr) {
      persistent_nodes_[i]->prewarm_columns(candidates);
    }
  }
}

const NegotiationRecord* OnlineSession::replan(model::SlotIndex event_slot,
                                               ReplanTrigger trigger) {
  // Re-planning is modeled as instantaneous computation whose *effect* is
  // delayed by tau slots (the rescheduling delay).
  const model::SlotIndex plan_start =
      std::min<model::SlotIndex>(event_slot + net_.time().tau, net_.horizon());
  if (plan_start >= net_.horizon() || known_.empty()) return nullptr;
  ++result_.negotiations;
  const std::int64_t started_us = obs::Tracer::now_us();

  NegotiationRecord record;
  record.trigger = trigger;
  record.event_slot = event_slot;
  record.plan_start = plan_start;
  record.known_tasks = known_.size();
  record.alive_chargers = alive_chargers();
  const std::uint64_t messages_before = result_.messages;
  const std::uint64_t rounds_before = result_.rounds;
  const std::uint64_t deliveries_before = result_.deliveries;
  const std::uint64_t bytes_before = result_.message_bytes;

  // Protocol-level span (like cli.solve and shard.run): the re-plan is the
  // serving daemon's unit of work, so its span and latency histogram exist
  // even in -DHASTE_OBS=OFF builds.
  obs::Span replan_span("online.replan");
  replan_span.arg("trigger", util::Json(trigger == ReplanTrigger::kArrival
                                            ? "arrival"
                                            : "failure"));
  replan_span.arg("event_slot", util::Json(static_cast<std::int64_t>(event_slot)));
  replan_span.arg("plan_start", util::Json(static_cast<std::int64_t>(plan_start)));
  replan_span.arg("known_tasks", util::Json(static_cast<std::int64_t>(known_.size())));
  replan_span.arg("alive", util::Json(static_cast<std::int64_t>(record.alive_chargers)));

  // Energy already harvested (and committed to be harvested during the
  // rescheduling window under the old plan).
  const std::vector<double> harvested =
      core::prefix_task_energy(net_, result_.schedule, plan_start);

  const bool negotiated = config_.strategy == OnlineStrategy::kHaste ||
                          config_.strategy == OnlineStrategy::kHasteSequential;
  std::vector<std::unique_ptr<ChargerNode>> scratch_nodes;  // non-reuse fleet
  std::vector<ChargerNode*> fleet;  // alive nodes, ascending id
  if (negotiated) {
    const core::MarginalEngine::Config engine_config{config_.colors, config_.samples,
                                                     config_.seed};
    if (config_.reuse_nodes) {
      persistent_nodes_.resize(static_cast<std::size_t>(net_.charger_count()));
      for (model::ChargerIndex i = 0; i < net_.charger_count(); ++i) {
        if (!alive_[static_cast<std::size_t>(i)]) continue;
        auto& slot = persistent_nodes_[static_cast<std::size_t>(i)];
        if (slot == nullptr) {
          slot = std::make_unique<ChargerNode>(net_, i, engine_config, config_.mode);
        }
        fleet.push_back(slot.get());
      }
    } else {
      for (model::ChargerIndex i = 0; i < net_.charger_count(); ++i) {
        if (!alive_[static_cast<std::size_t>(i)]) continue;
        scratch_nodes.push_back(
            std::make_unique<ChargerNode>(net_, i, engine_config, config_.mode));
        fleet.push_back(scratch_nodes.back().get());
      }
    }
  }

  switch (config_.strategy) {
    case OnlineStrategy::kHaste:
      negotiate_haste(net_, config_, fleet, known_, harvested, plan_start, alive_,
                      result_.schedule, result_);
      break;
    case OnlineStrategy::kHasteSequential:
      negotiate_sequential(net_, config_, fleet, known_, harvested, plan_start, alive_,
                           result_.schedule, result_);
      break;
    case OnlineStrategy::kGreedyUtility: {
      const model::Schedule plan = baseline::schedule_greedy_utility_over(
          net_, known_, plan_start, harvested);
      splice_plan(result_.schedule, plan, plan_start, alive_);
      break;
    }
    case OnlineStrategy::kGreedyCover: {
      const model::Schedule plan =
          baseline::schedule_greedy_cover_over(net_, known_, plan_start);
      splice_plan(result_.schedule, plan, plan_start, alive_);
      break;
    }
  }

  record.messages = result_.messages - messages_before;
  record.rounds = result_.rounds - rounds_before;
  const core::MarginalEngine::Stats plan_stats = fleet_engine_stats(fleet);
  record.row_evals = plan_stats.row_terms;
  result_.row_evaluations += record.row_evals;
  replan_span.arg("row_evals",
                  util::Json(static_cast<std::int64_t>(record.row_evals)));
  HASTE_OBS_COUNTER_ADD("online.replans", 1);
  HASTE_OBS_COUNTER_ADD("online.row_evals", record.row_evals);
  // Counter parity with the offline/greedy schedulers, so profiles can
  // compare oracle effort across all three scheduling paths.
  HASTE_OBS_COUNTER_ADD("online.marginal_evals", plan_stats.marginals);
  HASTE_OBS_COUNTER_ADD("online.commits", plan_stats.commits);
  HASTE_OBS_COUNTER_ADD("bus.broadcasts", record.messages);
  HASTE_OBS_COUNTER_ADD("bus.deliveries", result_.deliveries - deliveries_before);
  HASTE_OBS_COUNTER_ADD("bus.bytes", result_.message_bytes - bytes_before);
  static obs::Histogram& replan_latency =
      obs::MetricsRegistry::instance().histogram("online.replan.latency_us");
  replan_latency.record(static_cast<double>(obs::Tracer::now_us() - started_us));
  if (predictor_ != nullptr) {
    // Feed the negotiated plan value back so the cadence controller can
    // escalate (predictions held) or reset on a utility shortfall. The
    // greedy strategies carry no negotiated value estimate — NaN skips the
    // shortfall test while still advancing the cadence clock.
    double plan_value = std::numeric_limits<double>::quiet_NaN();
    if (negotiated) {
      plan_value = 0.0;
      for (const ChargerNode* node : fleet) plan_value += node->local_expected_value();
    }
    predictor_->on_replan(event_slot, plan_value, known_.size());
    // With the fleet freshly priced, speculate on the next wave: warm plan
    // columns for unknown tasks in predicted-hot cells.
    prewarm({});
  }
  result_.log.push_back(record);
  return &result_.log.back();
}

OnlineResult run_online(const model::Network& net, const OnlineConfig& config) {
  OnlineSession session(net, config);

  // Arrival batches: tasks grouped by release slot; the event queue
  // sequences the batches (and injected failures, arrivals first on slot
  // ties) exactly as a live caller would push them into the session.
  std::map<model::SlotIndex, std::vector<model::TaskIndex>> batches;
  for (model::TaskIndex j = 0; j < net.task_count(); ++j) {
    batches[net.tasks()[static_cast<std::size_t>(j)].release_slot].push_back(j);
  }

  EventQueue queue;
  for (const auto& [release_slot, batch] : batches) {
    queue.schedule(static_cast<double>(release_slot), [&, release_slot] {
      session.on_arrival(release_slot, batches.at(release_slot));
    });
  }
  for (const ChargerFailure& failure : config.failures) {
    if (failure.charger < 0 || failure.charger >= net.charger_count()) continue;
    queue.schedule(static_cast<double>(failure.slot), [&, failure] {
      session.on_failure(failure.charger, failure.slot);
    });
  }
  queue.run_all();

  return session.finish();
}

}  // namespace haste::dist
