#include "dist/online.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "baseline/greedy_cover.hpp"
#include "baseline/greedy_utility.hpp"
#include "dist/bus.hpp"
#include "dist/event_queue.hpp"
#include "dist/node.hpp"

namespace haste::dist {

namespace {

/// Copies the assignments of `source` into `target` for every *alive*
/// charger, for slots in [first_slot, horizon): target slots are cleared
/// first so the new plan fully replaces the old one from `first_slot` on.
void splice_plan(model::Schedule& target, const model::Schedule& source,
                 model::SlotIndex first_slot, const std::vector<bool>& alive) {
  for (model::ChargerIndex i = 0; i < target.charger_count(); ++i) {
    if (!alive[static_cast<std::size_t>(i)]) continue;
    for (model::SlotIndex k = first_slot; k < target.horizon(); ++k) {
      const model::SlotAssignment a = source.assignment(i, k);
      if (a.has_value()) {
        target.assign(i, k, *a);
      } else {
        target.clear(i, k);
      }
    }
  }
}

/// Runs the ordered token protocol for one re-plan: each charger, in
/// ascending ID order (one token round per color), greedily selects policies
/// for all its slots and broadcasts the selections; receivers fold them into
/// their local views. Equivalent in guarantee to the election protocol (the
/// order of a locally greedy run does not affect its 1/2 bound), but with
/// one broadcast per selection instead of repeated VALUE elections.
void negotiate_sequential(const model::Network& net, const OnlineConfig& config,
                          const std::vector<model::TaskIndex>& known,
                          std::span<const double> initial_energy,
                          model::SlotIndex plan_start, const std::vector<bool>& alive,
                          model::Schedule& executed, OnlineResult& result) {
  const model::ChargerIndex n = net.charger_count();

  BroadcastBus bus;
  std::vector<std::unique_ptr<ChargerNode>> nodes;
  for (model::ChargerIndex i = 0; i < n; ++i) {
    if (!alive[static_cast<std::size_t>(i)]) continue;
    nodes.push_back(std::make_unique<ChargerNode>(
        net, i,
        core::MarginalEngine::Config{config.colors, config.samples, config.seed},
        config.mode));
  }
  for (auto& node : nodes) {
    ChargerNode* raw = node.get();
    bus.register_node(raw->id(), [raw](const Message& m) { raw->receive(m); });
    std::vector<model::ChargerIndex> neighbors;
    for (model::ChargerIndex j : net.neighbors(raw->id())) {
      if (alive[static_cast<std::size_t>(j)]) neighbors.push_back(j);
    }
    bus.set_neighbors(raw->id(), std::move(neighbors));
  }
  for (auto& node : nodes) {
    bus.broadcast(node->begin_plan(known, initial_energy));
  }
  bus.flush_round();

  const int colors = std::max(1, config.colors);
  std::vector<ChargerNode*> workers;
  for (auto& node : nodes) {
    if (node->has_work()) workers.push_back(node.get());
  }

  for (int c = 0; c < colors; ++c) {
    for (ChargerNode* node : workers) {  // ascending id: nodes are built in order
      ++result.rounds;                   // one token turn
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        if (!node->begin_stage(k, c)) continue;
        if (auto msg = node->force_commit()) bus.broadcast(*msg);
      }
      bus.flush_round();  // successors see this node's selections
    }
  }

  for (ChargerNode* node : workers) node->write_schedule(executed, plan_start);
  for (auto& node : nodes) {
    if (!node->has_work()) {
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        executed.clear(node->id(), k);
      }
    }
  }
  result.messages += bus.stats().broadcasts;
  result.deliveries += bus.stats().deliveries;
  result.message_bytes += bus.stats().bytes;
}

/// Runs the full HASTE negotiation for one re-plan. Writes the agreed plan
/// into `executed` from `plan_start` on and accumulates counters.
void negotiate_haste(const model::Network& net, const OnlineConfig& config,
                     const std::vector<model::TaskIndex>& known,
                     std::span<const double> initial_energy,
                     model::SlotIndex plan_start, const std::vector<bool>& alive,
                     model::Schedule& executed, OnlineResult& result) {
  const model::ChargerIndex n = net.charger_count();

  BroadcastBus bus;
  std::vector<std::unique_ptr<ChargerNode>> nodes;  // index != charger id: alive only
  nodes.reserve(static_cast<std::size_t>(n));
  for (model::ChargerIndex i = 0; i < n; ++i) {
    if (!alive[static_cast<std::size_t>(i)]) continue;
    nodes.push_back(std::make_unique<ChargerNode>(
        net, i,
        core::MarginalEngine::Config{config.colors, config.samples, config.seed},
        config.mode));
  }
  for (auto& node : nodes) {
    ChargerNode* raw = node.get();
    bus.register_node(raw->id(), [raw](const Message& m) { raw->receive(m); });
    std::vector<model::ChargerIndex> neighbors;
    for (model::ChargerIndex j : net.neighbors(raw->id())) {
      if (alive[static_cast<std::size_t>(j)]) neighbors.push_back(j);
    }
    bus.set_neighbors(raw->id(), std::move(neighbors));
  }

  // Plan start: everyone announces its coverable known tasks (HELLO).
  for (auto& node : nodes) {
    bus.broadcast(node->begin_plan(known, initial_energy));
  }
  bus.flush_round();

  // The engine's color count may have been clamped (colors < 1 -> 1).
  const int colors = std::max(1, config.colors);

  std::vector<ChargerNode*> workers;
  for (auto& node : nodes) {
    if (node->has_work()) workers.push_back(node.get());
  }

  for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
    for (int c = 0; c < colors; ++c) {
      std::vector<ChargerNode*> participants;
      for (ChargerNode* node : workers) {
        if (node->begin_stage(k, c)) participants.push_back(node);
      }
      if (participants.empty()) continue;

      const std::size_t round_cap = participants.size() + 3;
      std::size_t stage_rounds = 0;
      for (;;) {
        bool any_undecided = false;
        for (ChargerNode* node : participants) {
          if (!node->decided()) any_undecided = true;
        }
        if (!any_undecided) break;
        if (++stage_rounds > round_cap) {
          throw std::logic_error("online negotiation failed to converge");
        }
        ++result.rounds;
        for (ChargerNode* node : participants) {
          if (auto msg = node->make_value_message()) bus.broadcast(*msg);
        }
        bus.flush_round();
        for (ChargerNode* node : participants) {
          if (auto msg = node->try_commit()) bus.broadcast(*msg);
        }
        bus.flush_round();
      }
    }
  }

  for (ChargerNode* node : workers) node->write_schedule(executed, plan_start);
  // Chargers without work keep (persist) their previous orientation — their
  // schedule rows beyond plan_start are cleared so stale plans do not execute.
  for (auto& node : nodes) {
    if (!node->has_work()) {
      for (model::SlotIndex k = plan_start; k < net.horizon(); ++k) {
        executed.clear(node->id(), k);
      }
    }
  }

  result.messages += bus.stats().broadcasts;
  result.deliveries += bus.stats().deliveries;
  result.message_bytes += bus.stats().bytes;
}

}  // namespace

OnlineResult run_online(const model::Network& net, const OnlineConfig& config) {
  OnlineResult result;
  result.schedule = model::Schedule(net.charger_count(), net.horizon());
  if (net.horizon() == 0) {
    result.evaluation = core::evaluate_schedule(net, result.schedule);
    return result;
  }

  // Arrival batches: tasks grouped by release slot. The event queue
  // sequences the batches; re-planning is modeled as instantaneous
  // computation whose *effect* is delayed by tau slots.
  std::map<model::SlotIndex, std::vector<model::TaskIndex>> batches;
  for (model::TaskIndex j = 0; j < net.task_count(); ++j) {
    batches[net.tasks()[static_cast<std::size_t>(j)].release_slot].push_back(j);
  }

  std::vector<model::TaskIndex> known;
  std::vector<bool> alive(static_cast<std::size_t>(net.charger_count()), true);

  // Shared re-plan body for arrival and failure events.
  const auto replan = [&](model::SlotIndex event_slot, ReplanTrigger trigger) {
    const model::SlotIndex plan_start =
        std::min<model::SlotIndex>(event_slot + net.time().tau, net.horizon());
    if (plan_start >= net.horizon() || known.empty()) return;
    ++result.negotiations;

    NegotiationRecord record;
    record.trigger = trigger;
    record.event_slot = event_slot;
    record.plan_start = plan_start;
    record.known_tasks = known.size();
    record.alive_chargers =
        static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
    const std::uint64_t messages_before = result.messages;
    const std::uint64_t rounds_before = result.rounds;

    // Energy already harvested (and committed to be harvested during the
    // rescheduling window under the old plan).
    const std::vector<double> harvested =
        core::prefix_task_energy(net, result.schedule, plan_start);

    switch (config.strategy) {
      case OnlineStrategy::kHaste:
        negotiate_haste(net, config, known, harvested, plan_start, alive,
                        result.schedule, result);
        break;
      case OnlineStrategy::kHasteSequential:
        negotiate_sequential(net, config, known, harvested, plan_start, alive,
                             result.schedule, result);
        break;
      case OnlineStrategy::kGreedyUtility: {
        const model::Schedule plan = baseline::schedule_greedy_utility_over(
            net, known, plan_start, harvested);
        splice_plan(result.schedule, plan, plan_start, alive);
        break;
      }
      case OnlineStrategy::kGreedyCover: {
        const model::Schedule plan =
            baseline::schedule_greedy_cover_over(net, known, plan_start);
        splice_plan(result.schedule, plan, plan_start, alive);
        break;
      }
    }

    record.messages = result.messages - messages_before;
    record.rounds = result.rounds - rounds_before;
    result.log.push_back(record);
  };

  EventQueue queue;
  for (const auto& [release_slot, batch] : batches) {
    queue.schedule(static_cast<double>(release_slot), [&, release_slot] {
      const auto& arriving = batches.at(release_slot);
      known.insert(known.end(), arriving.begin(), arriving.end());
      std::sort(known.begin(), known.end());
      replan(release_slot, ReplanTrigger::kArrival);
    });
  }
  for (const ChargerFailure& failure : config.failures) {
    if (failure.charger < 0 || failure.charger >= net.charger_count()) continue;
    queue.schedule(static_cast<double>(failure.slot), [&, failure] {
      if (!alive[static_cast<std::size_t>(failure.charger)]) return;
      alive[static_cast<std::size_t>(failure.charger)] = false;
      result.schedule.disable_from(failure.charger, failure.slot);
      // Survivors re-plan to cover for the lost charger.
      replan(failure.slot, ReplanTrigger::kFailure);
    });
  }
  queue.run_all();

  result.evaluation = core::evaluate_schedule(net, result.schedule);
  return result;
}

}  // namespace haste::dist
