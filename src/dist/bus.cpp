#include "dist/bus.hpp"

#include <stdexcept>
#include <utility>

namespace haste::dist {

void BroadcastBus::register_node(model::ChargerIndex id, Handler handler) {
  const auto index = static_cast<std::size_t>(id);
  if (handlers_.size() <= index) {
    handlers_.resize(index + 1);
    neighbors_.resize(index + 1);
  }
  if (handlers_[index]) {
    throw std::invalid_argument("BroadcastBus: node registered twice");
  }
  handlers_[index] = std::move(handler);
}

void BroadcastBus::set_neighbors(model::ChargerIndex id,
                                 std::vector<model::ChargerIndex> neighbors) {
  const auto index = static_cast<std::size_t>(id);
  if (index >= neighbors_.size()) {
    throw std::invalid_argument("BroadcastBus: unknown node");
  }
  neighbors_[index] = std::move(neighbors);
}

void BroadcastBus::broadcast(const Message& message) {
  const auto sender = static_cast<std::size_t>(message.sender);
  if (sender >= handlers_.size() || !handlers_[sender]) {
    throw std::invalid_argument("BroadcastBus: broadcast from unregistered node");
  }
  ++stats_.broadcasts;
  stats_.bytes += message.wire_size();
  pending_.push_back(message);
}

std::size_t BroadcastBus::flush_round() {
  // Swap out the queue first: handlers may broadcast replies, which belong
  // to the *next* round.
  std::vector<Message> batch;
  batch.swap(pending_);
  if (batch.empty()) return 0;
  ++stats_.rounds;
  std::size_t delivered = 0;
  for (const Message& message : batch) {
    for (model::ChargerIndex neighbor : neighbors_[static_cast<std::size_t>(message.sender)]) {
      const auto index = static_cast<std::size_t>(neighbor);
      if (index < handlers_.size() && handlers_[index]) {
        handlers_[index](message);
        ++delivered;
        ++stats_.deliveries;
      }
    }
  }
  return delivered;
}

}  // namespace haste::dist
