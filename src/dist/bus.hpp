// The broadcast medium connecting neighboring chargers.
//
// The paper assumes each charger's communication range covers all its
// neighbors (chargers sharing a coverable task), so one broadcast reaches
// every neighbor. The bus delivers queued broadcasts in deterministic FIFO
// order and keeps the counters behind the paper's Fig. 16 (messages and
// rounds per time slot).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/protocol.hpp"

namespace haste::dist {

/// Statistics accumulated by the bus.
struct BusStats {
  std::uint64_t broadcasts = 0;   ///< messages sent (one per broadcast)
  std::uint64_t deliveries = 0;   ///< per-neighbor receptions
  std::uint64_t bytes = 0;        ///< sum of wire sizes of broadcasts
  std::uint64_t rounds = 0;       ///< synchronous delivery rounds flushed
};

/// Deterministic neighbor-broadcast bus.
class BroadcastBus {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Registers node `id` (ids must be dense 0..n-1) with its receive handler.
  void register_node(model::ChargerIndex id, Handler handler);

  /// Declares the neighbor list of `id` (directed: receivers of its
  /// broadcasts). Usually symmetric, taken from Network::neighbors.
  void set_neighbors(model::ChargerIndex id, std::vector<model::ChargerIndex> neighbors);

  /// Queues a broadcast from `message.sender` to all its neighbors.
  void broadcast(const Message& message);

  /// Delivers every queued message (in send order) and bumps the round
  /// counter; messages broadcast *during* delivery are queued for the next
  /// round. Returns the number of messages delivered this round.
  std::size_t flush_round();

  /// True if no messages are waiting.
  bool idle() const { return pending_.empty(); }

  const BusStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BusStats{}; }

 private:
  std::vector<Handler> handlers_;
  std::vector<std::vector<model::ChargerIndex>> neighbors_;
  std::vector<Message> pending_;
  BusStats stats_;
};

}  // namespace haste::dist
