// Distributed online scheduling — the driver for Algorithm 3.
//
// Tasks arrive at their release slots; each arrival batch triggers a
// re-plan: chargers exchange HELLOs, negotiate every (slot, color) stage of
// the remaining horizon over the broadcast bus, and the new plan takes
// effect tau slots after the arrival (the rescheduling delay). Slots before
// that keep executing the previous plan. The same driver also runs the
// distributed baselines (GreedyUtility / GreedyCover recomputed per arrival
// with the same delay), which is how the paper's Figs. 11-15 compare them.
#pragma once

#include <cstdint>

#include "core/evaluate.hpp"
#include "core/objective.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"

namespace haste::dist {

/// Which per-charger policy rule the online driver runs.
enum class OnlineStrategy {
  kHaste,            ///< Algorithm 3 (distributed TabularGreedy negotiation)
  kHasteSequential,  ///< ordered token protocol (the global-order construction
                     ///< in Theorem 6.1's proof): chargers decide by ascending
                     ///< ID and only announce — fewer messages, no elections
  kGreedyUtility,    ///< each charger maximizes its own utility increment
  kGreedyCover,      ///< each charger maximizes covered active tasks
};

/// A charger failure to inject: the charger goes permanently silent at the
/// start of `slot` and stops participating in negotiations; survivors
/// re-plan (with the usual tau delay) to cover for it.
struct ChargerFailure {
  model::ChargerIndex charger = 0;
  model::SlotIndex slot = 0;
};

/// Online driver configuration.
struct OnlineConfig {
  OnlineStrategy strategy = OnlineStrategy::kHaste;
  int colors = 4;          ///< C (kHaste only)
  int samples = 16;        ///< color panel size (kHaste only)
  std::uint64_t seed = 1;  ///< shared seed (color panel + final sampling)
  std::vector<ChargerFailure> failures;  ///< failure injection (may be empty)
  /// How nodes evaluate stage marginals (kHaste/kHasteSequential only):
  /// kIncremental (default) reuses per-(row, sample) terms across remote
  /// commits; kRebuild is the reference path. Bit-identical results.
  core::TabularMode mode = core::TabularMode::kIncremental;
  /// Keep each charger's ChargerNode alive across re-plans
  /// (kHaste/kHasteSequential only) so its plan-level column store and
  /// dominant-set extraction carry over between negotiations: columns whose
  /// harvested base energy is unchanged since the previous plan skip their
  /// re-pricing row_term, and an unchanged known-task set skips the dominant
  /// re-extraction. Bit-identical to rebuilding the fleet per re-plan (the
  /// reference path, `false`) — asserted by the differential tests.
  bool reuse_nodes = true;
};

/// What caused a re-plan.
enum class ReplanTrigger {
  kArrival,  ///< new tasks released
  kFailure,  ///< a charger died
};

/// Telemetry for one re-plan (negotiation) of an online run.
struct NegotiationRecord {
  ReplanTrigger trigger = ReplanTrigger::kArrival;
  model::SlotIndex event_slot = 0;   ///< when the trigger fired
  model::SlotIndex plan_start = 0;   ///< first slot the new plan governs
  std::size_t known_tasks = 0;       ///< tasks released so far
  std::size_t alive_chargers = 0;    ///< chargers still operational
  std::uint64_t messages = 0;        ///< broadcasts spent on this re-plan
  std::uint64_t rounds = 0;          ///< negotiation rounds of this re-plan
  std::uint64_t row_evals = 0;       ///< engine row_term evaluations spent
};

/// Result of an online run.
struct OnlineResult {
  model::Schedule schedule;            ///< the executed schedule
  core::EvaluationResult evaluation;   ///< physical outcome (switching-aware)
  std::uint64_t messages = 0;          ///< broadcasts (HELLO + VALUE + UPDATE)
  std::uint64_t deliveries = 0;        ///< per-neighbor receptions (the paper's
                                       ///< message count, which grows ~n^2)
  std::uint64_t message_bytes = 0;     ///< total wire bytes
  std::uint64_t rounds = 0;            ///< synchronous negotiation rounds
  std::uint64_t negotiations = 0;      ///< re-plans triggered (arrivals/failures)
  std::uint64_t row_evaluations = 0;   ///< engine row_term evaluations, all re-plans
  std::vector<NegotiationRecord> log;  ///< per-re-plan telemetry, in time order
};

/// Runs the online scenario on `net`: tasks become known at their release
/// slots, re-planning happens per distinct release slot.
OnlineResult run_online(const model::Network& net, const OnlineConfig& config = {});

}  // namespace haste::dist
