// Distributed online scheduling — the driver for Algorithm 3.
//
// Tasks arrive at their release slots; each arrival batch triggers a
// re-plan: chargers exchange HELLOs, negotiate every (slot, color) stage of
// the remaining horizon over the broadcast bus, and the new plan takes
// effect tau slots after the arrival (the rescheduling delay). Slots before
// that keep executing the previous plan. The same driver also runs the
// distributed baselines (GreedyUtility / GreedyCover recomputed per arrival
// with the same delay), which is how the paper's Figs. 11-15 compare them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/evaluate.hpp"
#include "core/objective.hpp"
#include "model/network.hpp"
#include "model/schedule.hpp"
#include "predict/predictor.hpp"

namespace haste::dist {

class ChargerNode;

/// Which per-charger policy rule the online driver runs.
enum class OnlineStrategy {
  kHaste,            ///< Algorithm 3 (distributed TabularGreedy negotiation)
  kHasteSequential,  ///< ordered token protocol (the global-order construction
                     ///< in Theorem 6.1's proof): chargers decide by ascending
                     ///< ID and only announce — fewer messages, no elections
  kGreedyUtility,    ///< each charger maximizes its own utility increment
  kGreedyCover,      ///< each charger maximizes covered active tasks
};

/// A charger failure to inject: the charger goes permanently silent at the
/// start of `slot` and stops participating in negotiations; survivors
/// re-plan (with the usual tau delay) to cover for it.
struct ChargerFailure {
  model::ChargerIndex charger = 0;
  model::SlotIndex slot = 0;
};

/// Online driver configuration.
struct OnlineConfig {
  OnlineStrategy strategy = OnlineStrategy::kHaste;
  int colors = 4;          ///< C (kHaste only)
  int samples = 16;        ///< color panel size (kHaste only)
  std::uint64_t seed = 1;  ///< shared seed (color panel + final sampling)
  std::vector<ChargerFailure> failures;  ///< failure injection (may be empty)
  /// How nodes evaluate stage marginals (kHaste/kHasteSequential only):
  /// kIncremental (default) reuses per-(row, sample) terms across remote
  /// commits; kRebuild is the reference path. Bit-identical results.
  core::TabularMode mode = core::TabularMode::kIncremental;
  /// Keep each charger's ChargerNode alive across re-plans
  /// (kHaste/kHasteSequential only) so its plan-level column store and
  /// dominant-set extraction carry over between negotiations: columns whose
  /// harvested base energy is unchanged since the previous plan skip their
  /// re-pricing row_term, and an unchanged known-task set skips the dominant
  /// re-extraction. Bit-identical to rebuilding the fleet per re-plan (the
  /// reference path, `false`) — asserted by the differential tests.
  bool reuse_nodes = true;
  /// Predictive cadence control (src/predict/): learn per-region arrival
  /// rates online, defer re-plans while predictions hold, and speculatively
  /// pre-provision plan columns for predicted-hot regions. Disabled by
  /// default — the reactive path is bit-identical to a predictor-free
  /// build, pinned by the online_predict_differential suite.
  predict::PredictorConfig predictor;
};

/// What caused a re-plan.
enum class ReplanTrigger {
  kArrival,  ///< new tasks released
  kFailure,  ///< a charger died
};

/// Telemetry for one re-plan (negotiation) of an online run.
struct NegotiationRecord {
  ReplanTrigger trigger = ReplanTrigger::kArrival;
  model::SlotIndex event_slot = 0;   ///< when the trigger fired
  model::SlotIndex plan_start = 0;   ///< first slot the new plan governs
  std::size_t known_tasks = 0;       ///< tasks released so far
  std::size_t alive_chargers = 0;    ///< chargers still operational
  std::uint64_t messages = 0;        ///< broadcasts spent on this re-plan
  std::uint64_t rounds = 0;          ///< negotiation rounds of this re-plan
  std::uint64_t row_evals = 0;       ///< engine row_term evaluations spent
};

/// Result of an online run.
struct OnlineResult {
  model::Schedule schedule;            ///< the executed schedule
  core::EvaluationResult evaluation;   ///< physical outcome (switching-aware)
  std::uint64_t messages = 0;          ///< broadcasts (HELLO + VALUE + UPDATE)
  std::uint64_t deliveries = 0;        ///< per-neighbor receptions (the paper's
                                       ///< message count, which grows ~n^2)
  std::uint64_t message_bytes = 0;     ///< total wire bytes
  std::uint64_t rounds = 0;            ///< synchronous negotiation rounds
  std::uint64_t negotiations = 0;      ///< re-plans triggered (arrivals/failures)
  std::uint64_t row_evaluations = 0;   ///< engine row_term evaluations, all re-plans
  std::uint64_t replans_skipped = 0;   ///< arrival events deferred by the predictor
  predict::PredictorStats predictor;   ///< predictor ledger (all-zero when off)
  std::vector<NegotiationRecord> log;  ///< per-re-plan telemetry, in time order
};

/// Incremental form of the online driver: one live scheduling session whose
/// events are pushed in by the caller instead of drained from a pre-built
/// event queue. `run_online` is a thin wrapper over this class, so a session
/// fed the same event sequence produces a bit-identical OnlineResult — the
/// invariant the `haste_serve` daemon's differential tests pin down.
///
/// Events must arrive in non-decreasing slot order, with same-slot arrivals
/// pushed before same-slot failures (the tie-break the event queue applies).
/// Each event triggers at most one re-plan, whose effect is delayed by tau
/// slots exactly as in the batch driver. Under OnlineConfig::reuse_nodes the
/// per-charger negotiation state stays warm across events — the property
/// that makes a long-lived serving session incremental rather than a replay.
class OnlineSession {
 public:
  /// Binds to `net`, which must outlive the session. `config.failures` is
  /// ignored here — failures are injected via on_failure.
  OnlineSession(const model::Network& net, const OnlineConfig& config = {});
  ~OnlineSession();
  OnlineSession(const OnlineSession&) = delete;
  OnlineSession& operator=(const OnlineSession&) = delete;

  /// Releases `tasks` at `slot` and re-plans. Returns the record of the
  /// re-plan, or nullptr when none ran (nothing known yet or the plan would
  /// start past the horizon). The pointer is valid until the next event.
  /// Throws std::invalid_argument on a slot regression, an out-of-range
  /// task index, or a task released twice; std::logic_error after finish().
  const NegotiationRecord* on_arrival(model::SlotIndex slot,
                                      const std::vector<model::TaskIndex>& tasks);

  /// Fails `charger` at the start of `slot`: its plan is disabled from
  /// `slot` on and survivors re-plan. A charger already dead is a no-op
  /// (nullptr). Same return/throw contract as on_arrival.
  const NegotiationRecord* on_failure(model::ChargerIndex charger,
                                      model::SlotIndex slot);

  /// Evaluates the executed schedule and returns the accumulated result.
  /// The session is consumed: further events or a second finish() throw.
  OnlineResult finish();

  std::size_t known_tasks() const { return known_.size(); }
  std::size_t alive_chargers() const;
  bool finished() const { return finished_; }
  const model::Network& network() const { return net_; }

 private:
  const NegotiationRecord* replan(model::SlotIndex event_slot, ReplanTrigger trigger);
  void check_event(model::SlotIndex slot) const;
  void flush_pending();  ///< folds the deferred arrivals into known_
  /// Speculatively prices plan columns on the persistent fleet for the
  /// deferred batch plus every unknown task in a predicted-hot cell.
  void prewarm(const std::vector<model::TaskIndex>& batch);

  const model::Network& net_;
  OnlineConfig config_;
  std::vector<model::TaskIndex> known_;
  /// Arrivals the predictor deferred; negotiated at the next re-plan.
  std::vector<model::TaskIndex> pending_;
  /// Live only when config_.predictor.enabled — the reactive path never
  /// touches it (bit-identity with predictor-free builds).
  std::unique_ptr<predict::Predictor> predictor_;
  std::vector<bool> alive_;
  /// Per-charger negotiation state under reuse_nodes (lazily constructed on
  /// the first re-plan a charger is alive for); unused otherwise.
  std::vector<std::unique_ptr<ChargerNode>> persistent_nodes_;
  OnlineResult result_;
  model::SlotIndex last_event_slot_ = 0;
  bool finished_ = false;
};

/// Runs the online scenario on `net`: tasks become known at their release
/// slots, re-planning happens per distinct release slot.
OnlineResult run_online(const model::Network& net, const OnlineConfig& config = {});

}  // namespace haste::dist
