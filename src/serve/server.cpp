#include "serve/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace haste::serve {

namespace {

using Clock = std::chrono::steady_clock;

util::Json reject_json(const char* reason) {
  util::Json reply = util::Json::object();
  reply.set("ok", false);
  reply.set("op", "reject");
  reply.set("reason", reason);
  return reply;
}

std::atomic<Server*> g_signal_server{nullptr};

void drain_signal_handler(int) {
  // First signal: hand the server to its drain path. A second signal means
  // the operator is done waiting — hard-exit with the conventional 128+2.
  Server* server = g_signal_server.exchange(nullptr);
  if (server == nullptr) ::_exit(130);
  server->request_drain();
}

}  // namespace

struct Server::Connection {
  std::uint64_t id = 0;
  util::TcpSocket socket;
  util::LineBuffer lines;
  Session session;
  std::deque<std::string> queue;  ///< authed request lines awaiting dispatch
  bool authed = false;
  Clock::time_point auth_deadline{};
  bool busy = false;          ///< one handle_line job in flight on the pool
  bool disconnected = false;  ///< socket gone; reap once no job is in flight
  bool close_after_send = false;  ///< close once the outbox drains
  Clock::time_point close_deadline{};
};

Server::Server(const ServerOptions& options)
    : options_(options),
      // The listener's default backlog (16, sized for the shard pool's
      // handful of workers) overflows under a thundering herd of sessions:
      // the kernel drops the excess handshakes and clients see a reset
      // after connect(). Size it to admit a simultaneous burst of
      // max_sessions (the kernel clamps to net.core.somaxconn).
      listener_(util::TcpListener::listen(
          options.listen_address,
          static_cast<int>(std::min<std::size_t>(options.max_sessions + 16, 4096)))) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("haste_serve: self-pipe failed");
  }
  if (!options_.metrics_address.empty()) {
    metrics_listener_ = util::TcpListener::listen(options_.metrics_address);
    HASTE_LOG_INFO << "haste_serve: metrics scrapes on "
                   << metrics_listener_.local_address();
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  for (int fd : pipe_fds) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    // Non-blocking on both ends: a full pipe means a wake-up is already
    // pending, and the signal handler must never block on it.
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
}

Server::~Server() {
  // The pool (declared last) is destroyed first, joining in-flight jobs
  // before connections_ and done_ go away; here we only close the pipe.
  if (g_signal_server.load() == this) g_signal_server.store(nullptr);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

std::string Server::address() const { return listener_.local_address(); }

std::string Server::metrics_address() const {
  return metrics_listener_.valid() ? metrics_listener_.local_address() : "";
}

void Server::request_drain() {
  // Async-signal-safe: one relaxed store plus a non-blocking pipe write.
  drain_requested_.store(true, std::memory_order_relaxed);
  request_wake();
}

void Server::install_signal_drain(Server* server) {
  g_signal_server.store(server);
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void Server::run() {
  HASTE_LOG_INFO << "haste_serve: listening on " << address();
  for (;;) {
    drain_done_replies();
    if (draining() && !drain_started_) {
      drain_started_ = true;
      listener_ = util::TcpListener();  // refuse new sessions from here on
      HASTE_LOG_INFO << "haste_serve: draining " << connections_.size()
                     << " session(s)";
    }
    if (drain_started_) start_drain_finishes();
    flush_and_reap();
    if (drain_started_ && connections_.empty()) break;

    std::vector<int> fds;
    std::vector<std::uint64_t> conn_ids;
    fds.push_back(wake_read_fd_);
    fds.push_back(listener_.valid() ? listener_.fd() : -1);
    // The metrics listener outlives the session listener: it keeps
    // answering scrapes through the drain so the drain itself is observable.
    fds.push_back(metrics_listener_.valid() ? metrics_listener_.fd() : -1);
    for (const auto& [id, conn] : connections_) {
      fds.push_back(conn->disconnected ? -1 : conn->socket.fd());
      conn_ids.push_back(id);
    }
    const std::vector<std::size_t> ready = util::poll_readable(fds, poll_timeout_ms());
    for (std::size_t index : ready) {
      if (index == 0) {
        char scratch[256];
        while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
        }
      } else if (index == 1) {
        accept_pending();
      } else if (index == 2) {
        serve_metrics_scrapes();
      } else {
        const auto it = connections_.find(conn_ids[index - 3]);
        if (it != connections_.end()) read_connection(*it->second);
      }
    }
    drain_done_replies();
    for (const auto& [id, conn] : connections_) dispatch(*conn);
  }
  pool_->wait_idle();
  HASTE_LOG_INFO << "haste_serve: drained";
}

int Server::poll_timeout_ms() const {
  // 200ms keeps auth deadlines, close deadlines, and drain progress checked
  // at a coarse-but-cheap cadence; jobs wake the loop instantly via the pipe.
  return 200;
}

void Server::accept_pending() {
  for (;;) {
    std::optional<util::TcpSocket> socket = listener_.accept(0);
    if (!socket) return;
    if (connections_.size() >= options_.max_sessions) {
      HASTE_OBS_COUNTER_ADD("serve.reject.session_limit", 1);
      socket->write_all(reject_json("session-limit").dump() + "\n");
      continue;  // socket destructor closes
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->socket = std::move(*socket);
    conn->socket.set_max_outbox_bytes(options_.max_outbox_bytes);
    conn->lines.set_max_line_bytes(options_.max_line_bytes);
    conn->authed = options_.auth_token.empty();
    conn->auth_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options_.auth_timeout_seconds));
    HASTE_OBS_COUNTER_ADD("serve.accepted", 1);
    connections_[conn->id] = std::move(conn);
    HASTE_OBS_GAUGE_SET("serve.sessions.active",
                        static_cast<double>(connections_.size()));
  }
}

void Server::serve_metrics_scrapes() {
  for (;;) {
    std::optional<util::TcpSocket> socket = metrics_listener_.accept(0);
    if (!socket) return;
    // One response per connection, whatever the client sent (an HTTP GET
    // line, or nothing at all for a bare TCP reader). Reading the request
    // bytes before closing keeps the close orderly — closing with unread
    // input would RST and could discard the response in flight.
    if (!util::poll_readable({socket->fd()}, 100).empty()) {
      char scratch[4096];
      [[maybe_unused]] const ssize_t n =
          ::read(socket->fd(), scratch, sizeof(scratch));
    }
    const std::string body =
        obs::MetricsRegistry::instance().snapshot().text_exposition();
    const std::string response =
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    socket->write_all(response);
    HASTE_OBS_COUNTER_ADD("serve.metrics.scrapes", 1);
  }
}

void Server::read_connection(Connection& conn) {
  if (conn.disconnected) return;
  char buffer[65536];
  const ssize_t n = ::read(conn.socket.fd(), buffer, sizeof(buffer));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    remove_connection(conn.id);  // marks disconnected; reaped when idle
    return;
  }
  if (n == 0) {
    remove_connection(conn.id);
    return;
  }
  for (const std::string& line : conn.lines.feed(buffer, static_cast<std::size_t>(n))) {
    if (conn.disconnected) return;
    if (!line.empty()) ingest_line(conn, line);
  }
  if (conn.lines.overflowed()) {
    // LineBuffer already bumped net.overflow; the framing is unrecoverable.
    remove_connection(conn.id);
  }
}

void Server::ingest_line(Connection& conn, const std::string& line) {
  HASTE_OBS_COUNTER_ADD("serve.lines", 1);
  if (!conn.authed) {
    std::string token = line;
    if (!token.empty() && token.back() == '\r') token.pop_back();
    if (token == options_.auth_token) {
      conn.authed = true;
      return;
    }
    HASTE_OBS_COUNTER_ADD("serve.auth_reject", 1);
    remove_connection(conn.id);
    return;
  }
  if (drain_started_) {
    HASTE_OBS_COUNTER_ADD("serve.reject.draining", 1);
    send_reject(conn, "draining");
    return;
  }
  // Admission: 1 executing + arrival_quota queued lines per session. The
  // reject is a reply, not a close — a client pacing itself off replies
  // never trips this, and one that floods learns which lines were dropped.
  const std::size_t pending = conn.queue.size() + (conn.busy ? 1 : 0);
  if (pending > options_.arrival_quota) {
    HASTE_OBS_COUNTER_ADD("serve.reject.arrival_quota", 1);
    send_reject(conn, "arrival-quota");
    return;
  }
  conn.queue.push_back(line);
}

void Server::send_reject(Connection& conn, const char* reason) {
  if (!conn.socket.send_line(reject_json(reason).dump())) remove_connection(conn.id);
}

void Server::dispatch(Connection& conn) {
  if (conn.busy || conn.disconnected || conn.queue.empty()) return;
  conn.busy = true;
  std::string line = std::move(conn.queue.front());
  conn.queue.pop_front();
  Connection* raw = &conn;  // stable: busy connections are never destroyed
  pool_->submit([this, raw, line = std::move(line)] {
    DoneReply done;
    done.conn_id = raw->id;
    done.reply = raw->session.handle_line(line);
    {
      const std::lock_guard<std::mutex> lock(done_mutex_);
      done_.push_back(std::move(done));
    }
    request_wake();
  });
}

void Server::start_drain_finishes() {
  for (const auto& [id, conn] : connections_) {
    if (conn->busy || conn->disconnected || !conn->queue.empty()) continue;
    if (conn->close_after_send) continue;  // result already on its way out
    if (!conn->session.opened()) {
      // Nothing to finish (never opened, or already finished): let the
      // flush/reap pass close it.
      conn->close_after_send = true;
      conn->close_deadline = Clock::now() + std::chrono::seconds(5);
      continue;
    }
    // Finish the session as if the client had asked: the unsolicited result
    // line is what "drain without dropping an in-flight re-plan" means.
    conn->busy = true;
    Connection* raw = conn.get();
    pool_->submit([this, raw] {
      DoneReply done;
      done.conn_id = raw->id;
      std::optional<Reply> reply = raw->session.drain_finish();
      done.reply = reply ? std::move(*reply) : Reply{"", true};
      {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        done_.push_back(std::move(done));
      }
      request_wake();
    });
  }
}

void Server::drain_done_replies() {
  std::deque<DoneReply> batch;
  {
    const std::lock_guard<std::mutex> lock(done_mutex_);
    batch.swap(done_);
  }
  for (DoneReply& done : batch) {
    const auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    conn.busy = false;
    if (conn.disconnected) continue;  // client left mid-re-plan; drop the reply
    if (!done.reply.line.empty() && !conn.socket.send_line(done.reply.line)) {
      remove_connection(conn.id);
      continue;
    }
    if (done.reply.close) {
      conn.close_after_send = true;
      conn.close_deadline = Clock::now() + std::chrono::seconds(5);
    }
  }
}

void Server::flush_and_reap() {
  const Clock::time_point now = Clock::now();
  std::vector<std::uint64_t> finished;
  for (const auto& [id, conn] : connections_) {
    if (!conn->disconnected) {
      if (!conn->socket.flush(0)) {
        remove_connection(id);
      } else if (!conn->authed && now >= conn->auth_deadline) {
        HASTE_OBS_COUNTER_ADD("serve.auth_reject", 1);
        remove_connection(id);
      } else if (conn->close_after_send && !conn->busy && conn->queue.empty() &&
                 (conn->socket.pending_bytes() == 0 || now >= conn->close_deadline)) {
        remove_connection(id);
      }
    }
    if (conn->disconnected && !conn->busy) finished.push_back(id);
  }
  for (std::uint64_t id : finished) {
    // A session destroyed while still opened never delivered its result.
    if (connections_.at(id)->session.opened()) {
      HASTE_OBS_COUNTER_ADD("serve.sessions.aborted", 1);
    }
    connections_.erase(id);
  }
  HASTE_OBS_GAUGE_SET("serve.sessions.active",
                      static_cast<double>(connections_.size()));
}

void Server::remove_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.disconnected) return;
  conn.disconnected = true;
  conn.queue.clear();
  if (conn.socket.valid()) {
    if (conn.socket.pending_bytes() > 0) conn.socket.flush(100);
    conn.socket.close();
  }
  // The map entry itself is erased by flush_and_reap once no job is in
  // flight — pool jobs hold a raw pointer to this Connection.
}

void Server::request_wake() {
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

}  // namespace haste::serve
