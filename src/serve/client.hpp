// Blocking client for the haste_serve wire protocol, plus the replay/verify
// helpers the tool and the lifecycle tests share: stream a scenario's
// arrival trace into a daemon, collect what was acknowledged, and diff the
// daemon's result against the in-process driver bit for bit.
#pragma once

#include <string>
#include <vector>

#include "dist/online.hpp"
#include "model/network.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace haste::serve {

/// One connection speaking the session protocol in lock-step (one reply read
/// per request sent). Blocking; intended for clients and tests, never for
/// the daemon's own loop.
class Client {
 public:
  /// Connects and, when `token` is non-empty, sends it as the first line.
  explicit Client(const std::string& address, const std::string& token = "");

  /// Sends `request` and returns the next reply line, parsed. A null Json
  /// means the connection died (EOF) before a reply arrived.
  util::Json call(const util::Json& request);

  /// Reads one reply line without sending anything (drain results arrive
  /// unsolicited). Null Json on EOF.
  util::Json read_reply();

  util::Json open(const model::Network& net, const dist::OnlineConfig& config);
  util::Json arrive(model::SlotIndex slot, const std::vector<model::TaskIndex>& tasks);
  util::Json fail(model::ChargerIndex charger, model::SlotIndex slot);
  util::Json finish();

  bool connected() const { return socket_.valid(); }

 private:
  util::TcpSocket socket_;
  util::LineBuffer lines_;
  std::vector<std::string> ready_;  ///< completed lines not yet consumed
};

/// One event of an online trace, in the order the session must see it.
struct ReplayEvent {
  bool is_failure = false;
  model::SlotIndex slot = 0;
  std::vector<model::TaskIndex> tasks;  ///< arrival batch (is_failure false)
  model::ChargerIndex charger = 0;      ///< failed charger (is_failure true)
};

/// The event sequence run_online would derive from `net` and `failures`:
/// arrival batches per release slot in ascending slot order, failures merged
/// in by slot with arrivals first on ties (the event queue's FIFO tie-break).
std::vector<ReplayEvent> build_replay_events(
    const model::Network& net, const std::vector<dist::ChargerFailure>& failures = {});

/// What a replay achieved against a live daemon.
struct ReplayOutcome {
  util::Json result;                ///< the "result" reply; null if none came
  std::vector<ReplayEvent> acked;   ///< events acknowledged with ok replies
  std::size_t rejected = 0;         ///< reject replies observed
  bool finished = false;            ///< a "result" reply arrived
};

/// Streams `events` into a daemon at `address`: open, then one event per
/// request line (sleeping `inter_event_sleep_ms` before each when > 0 — the
/// knob drain tests use to catch the daemon mid-stream), then finish. Stops
/// early on disconnect or an unsolicited drain result; rejected events are
/// counted but not retried.
ReplayOutcome replay_online(const std::string& address, const std::string& token,
                            const model::Network& net,
                            const dist::OnlineConfig& config,
                            const std::vector<ReplayEvent>& events,
                            int inter_event_sleep_ms = 0);

/// Replays `events` through a local OnlineSession — the reference a daemon
/// result (or an acked prefix of one) must match bit for bit.
dist::OnlineResult replay_locally(const model::Network& net,
                                  const dist::OnlineConfig& config,
                                  const std::vector<ReplayEvent>& events);

/// "" when the daemon's "result" reply is bit-identical to `reference`
/// (schedule JSON, exact utility doubles, exact counters); otherwise a
/// human-readable description of the first mismatch.
std::string diff_result(const util::Json& result, const dist::OnlineResult& reference);

}  // namespace haste::serve
