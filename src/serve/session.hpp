// One scheduling session of the haste_serve daemon: a protocol interpreter
// that turns request lines into replies by driving a dist::OnlineSession.
//
// Wire protocol (one JSON object per line; one reply line per request):
//
//   {"op":"open", "scenario": <network json>, "config": <online config>}
//     -> {"ok":true, "op":"opened", "chargers":N, "tasks":M, "horizon":H}
//   {"op":"arrive", "slot":K, "tasks":[j, ...], "deadlines":[d, ...]?}
//     -> {"ok":true, "op":"replanned", "slot":K, "trigger":"arrival",
//         "replanned":bool, "plan_start":P, "known_tasks":T,
//         "messages":"u64", "rounds":"u64", "row_evals":"u64"}
//     The optional "deadlines" array echoes each batch task's deadline_slot
//     (-1 = none) so driver and daemon provably agree on the objective. A
//     wrong or malformed echo draws {"ok":false, "op":"reject",
//     "message":"..."} WITHOUT applying the batch or closing the session
//     (counted in serve.deadline_rejects) — the caller is on a different
//     scenario, which is recoverable, unlike a protocol error.
//   {"op":"fail", "charger":i, "slot":K}
//     -> same reply shape with "trigger":"failure"
//   {"op":"finish"}
//     -> {"ok":true, "op":"result", "schedule": <schedule json>,
//         "weighted_utility":..., "relaxed_weighted_utility":...,
//         "switches":N, "messages":"u64", "deliveries":"u64",
//         "message_bytes":"u64", "rounds":"u64", "negotiations":"u64",
//         "row_evals":"u64"}  -- and the connection closes
//     Sessions whose config enables the predictor ("config":{"predictor":
//     {"enabled":true, ...}} — every src/predict/ knob is accepted) get an
//     extra "predictor":{"replans_skipped","hits","misses","batched"}
//     ledger object (u64 strings); reactive sessions keep the historical
//     reply bytes. A deferred arrive line replies "replanned":false, same
//     as a pre-horizon no-op re-plan.
//
// Any malformed or out-of-order request yields
//   {"ok":false, "op":"error", "message":"..."}
// and closes the connection — a session whose event stream went bad cannot
// silently diverge from the one-shot driver. 64-bit counters travel as
// decimal strings (the shard wire convention: JSON numbers are doubles and
// round above 2^53).
//
// The Session itself is pure computation — no sockets, no threads — so the
// daemon's driver loop can run handle_line on a thread pool and the tests
// can drive it directly.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "dist/online.hpp"
#include "util/json.hpp"

namespace haste::serve {

/// Exact JSON round-trip for the online driver configuration (strategy by
/// name, seed as a decimal-string u64; `failures` is not carried — a serving
/// session injects failures as events). Unknown strategy names throw.
util::Json online_config_to_json(const dist::OnlineConfig& config);
dist::OnlineConfig online_config_from_json(const util::Json& json);

/// One reply line, plus whether the connection must close after sending it.
struct Reply {
  std::string line;
  bool close = false;
};

/// Protocol state machine for one connection. Not thread-safe; the server
/// guarantees at most one in-flight handle_line per session.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Serves one request line. Never throws: every failure (parse error,
  /// protocol violation, scheduler exception) becomes an error reply that
  /// closes the connection.
  Reply handle_line(const std::string& line);

  /// Drain path: finishes an opened, unfinished session as if the client
  /// had sent {"op":"finish"}, returning the unsolicited result reply.
  /// std::nullopt when there is nothing to finish.
  std::optional<Reply> drain_finish();

  /// True once "open" succeeded and "finish" has not yet consumed the run.
  bool opened() const { return online_ != nullptr; }

 private:
  Reply handle_request(const util::Json& request);
  Reply finish_reply();

  std::unique_ptr<model::Network> net_;
  std::unique_ptr<dist::OnlineSession> online_;
  /// Whether this session opted into predictive cadence: gates the
  /// predictor ledger in the result reply, so reactive sessions keep their
  /// historical reply bytes.
  bool predictor_enabled_ = false;
};

}  // namespace haste::serve
