#include "serve/session.hpp"

#include <stdexcept>
#include <vector>

#include "io/scenario_io.hpp"
#include "obs/obs.hpp"

namespace haste::serve {

namespace {

using util::Json;

// 64-bit counters ride as decimal strings (the shard wire convention):
// JSON numbers are doubles and silently round above 2^53.
Json u64_json(std::uint64_t value) { return Json(std::to_string(value)); }

std::uint64_t u64_from(const Json& json) {
  if (json.is_number()) {
    // Accept small numeric seeds for hand-written requests; exact up to 2^53.
    const double value = json.as_number();
    if (value < 0 || value != static_cast<double>(static_cast<std::uint64_t>(value))) {
      throw util::JsonError("u64 field is not a non-negative integer");
    }
    return static_cast<std::uint64_t>(value);
  }
  const std::string& text = json.as_string();
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed, 10);
  if (consumed != text.size()) throw util::JsonError("malformed u64: " + text);
  return value;
}

const char* strategy_name(dist::OnlineStrategy strategy) {
  switch (strategy) {
    case dist::OnlineStrategy::kHaste: return "haste";
    case dist::OnlineStrategy::kHasteSequential: return "haste-seq";
    case dist::OnlineStrategy::kGreedyUtility: return "greedy-utility";
    case dist::OnlineStrategy::kGreedyCover: return "greedy-cover";
  }
  return "haste";
}

dist::OnlineStrategy parse_strategy(const std::string& name) {
  if (name == "haste") return dist::OnlineStrategy::kHaste;
  if (name == "haste-seq") return dist::OnlineStrategy::kHasteSequential;
  if (name == "greedy-utility") return dist::OnlineStrategy::kGreedyUtility;
  if (name == "greedy-cover") return dist::OnlineStrategy::kGreedyCover;
  throw util::JsonError("unknown online strategy: " + name);
}

const char* tabular_mode_name(core::TabularMode mode) {
  return mode == core::TabularMode::kRebuild ? "rebuild" : "incremental";
}

core::TabularMode parse_tabular_mode(const std::string& name) {
  if (name == "incremental") return core::TabularMode::kIncremental;
  if (name == "rebuild") return core::TabularMode::kRebuild;
  throw util::JsonError("unknown tabular mode: " + name);
}

// The session lifecycle counters are the daemon's operational surface, so
// like the online.replan span they bypass the HASTE_OBS gate and exist even
// in -DHASTE_OBS=OFF builds (the per-request counters in server.cpp stay
// gated — they are diagnostics, not contract).
obs::Counter& lifecycle_counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

Json error_reply(const std::string& message) {
  Json reply = Json::object();
  reply.set("ok", false);
  reply.set("op", "error");
  reply.set("message", message);
  return reply;
}

// Returns an empty string when `deadlines` is a well-formed echo of the
// batch's task deadlines (-1 = no deadline), else a description of the first
// problem. Never throws: a malformed echo must soft-reject the one line, not
// trip the catch-all that closes the whole session.
std::string check_deadline_echo(const model::Network& net, const Json& deadlines,
                                const std::vector<model::TaskIndex>& tasks) {
  try {
    if (deadlines.size() != tasks.size()) {
      return "deadlines length " + std::to_string(deadlines.size()) +
             " does not match tasks length " + std::to_string(tasks.size());
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto echoed = static_cast<std::int64_t>(deadlines.at(t).as_int());
      const model::TaskIndex j = tasks[t];
      // Out-of-range ids fall through to on_arrival's own range check.
      if (j < 0 || j >= net.task_count()) continue;
      const model::Task& task = net.tasks()[static_cast<std::size_t>(j)];
      const std::int64_t expected =
          task.has_deadline() ? static_cast<std::int64_t>(task.deadline_slot) : -1;
      if (echoed != expected) {
        return "task " + std::to_string(j) + " deadline mismatch: scenario has " +
               std::to_string(expected) + ", arrive line says " +
               std::to_string(echoed);
      }
    }
  } catch (const std::exception& error) {
    return std::string("malformed deadlines field: ") + error.what();
  }
  return "";
}

}  // namespace

Json online_config_to_json(const dist::OnlineConfig& config) {
  Json json = Json::object();
  json.set("strategy", strategy_name(config.strategy));
  json.set("colors", config.colors);
  json.set("samples", config.samples);
  json.set("seed", u64_json(config.seed));
  json.set("mode", tabular_mode_name(config.mode));
  json.set("reuse_nodes", config.reuse_nodes);
  Json predictor = Json::object();
  predictor.set("enabled", config.predictor.enabled);
  predictor.set("grid", config.predictor.grid);
  predictor.set("discount", config.predictor.discount);
  predictor.set("hot_rate", config.predictor.hot_rate);
  predictor.set("min_confidence", config.predictor.min_confidence);
  predictor.set("surprise_factor", config.predictor.surprise_factor);
  predictor.set("max_level", config.predictor.max_level);
  predictor.set("batch_slots", config.predictor.batch_slots);
  predictor.set("batch_tasks", config.predictor.batch_tasks);
  predictor.set("shortfall_factor", config.predictor.shortfall_factor);
  predictor.set("prewarm", config.predictor.prewarm);
  json.set("predictor", std::move(predictor));
  return json;
}

dist::OnlineConfig online_config_from_json(const Json& json) {
  dist::OnlineConfig config;
  config.strategy = parse_strategy(json.string_or("strategy", "haste"));
  config.colors = static_cast<int>(json.number_or("colors", config.colors));
  config.samples = static_cast<int>(json.number_or("samples", config.samples));
  if (json.contains("seed")) config.seed = u64_from(json.at("seed"));
  config.mode = parse_tabular_mode(json.string_or("mode", "incremental"));
  config.reuse_nodes = json.bool_or("reuse_nodes", config.reuse_nodes);
  if (json.contains("predictor")) {
    const Json& predictor = json.at("predictor");
    predict::PredictorConfig& p = config.predictor;
    p.enabled = predictor.bool_or("enabled", p.enabled);
    p.grid = static_cast<int>(predictor.number_or("grid", p.grid));
    p.discount = predictor.number_or("discount", p.discount);
    p.hot_rate = predictor.number_or("hot_rate", p.hot_rate);
    p.min_confidence = predictor.number_or("min_confidence", p.min_confidence);
    p.surprise_factor = predictor.number_or("surprise_factor", p.surprise_factor);
    p.max_level = static_cast<int>(predictor.number_or("max_level", p.max_level));
    p.batch_slots = static_cast<int>(predictor.number_or("batch_slots", p.batch_slots));
    p.batch_tasks = static_cast<int>(predictor.number_or("batch_tasks", p.batch_tasks));
    p.shortfall_factor = predictor.number_or("shortfall_factor", p.shortfall_factor);
    p.prewarm = predictor.bool_or("prewarm", p.prewarm);
  }
  return config;
}

Session::Session() = default;
Session::~Session() = default;

Reply Session::handle_line(const std::string& line) {
  try {
    return handle_request(Json::parse(line));
  } catch (const std::exception& error) {
    // Parse errors, protocol violations, and scheduler exceptions all land
    // here: the session is in an unknown state, so the connection closes.
    static obs::Counter& errors = lifecycle_counter("serve.errors");
    errors.add(1);
    return Reply{error_reply(error.what()).dump(), /*close=*/true};
  }
}

Reply Session::handle_request(const Json& request) {
  const std::string op = request.at("op").as_string();

  if (op == "open") {
    if (opened()) throw std::logic_error("session already open");
    auto net = std::make_unique<model::Network>(
        io::network_from_json(request.at("scenario")));
    dist::OnlineConfig config;
    if (request.contains("config")) {
      config = online_config_from_json(request.at("config"));
    }
    online_ = std::make_unique<dist::OnlineSession>(*net, config);
    net_ = std::move(net);
    predictor_enabled_ = config.predictor.enabled;
    static obs::Counter& opened_sessions = lifecycle_counter("serve.sessions.opened");
    opened_sessions.add(1);
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("op", "opened");
    reply.set("chargers", static_cast<int>(net_->charger_count()));
    reply.set("tasks", static_cast<int>(net_->task_count()));
    reply.set("horizon", static_cast<int>(net_->horizon()));
    return Reply{reply.dump(), false};
  }

  if (op == "arrive" || op == "fail") {
    if (!opened()) throw std::logic_error("no open session");
    const model::SlotIndex slot =
        static_cast<model::SlotIndex>(request.at("slot").as_int());
    const dist::NegotiationRecord* record = nullptr;
    if (op == "arrive") {
      const Json& tasks_json = request.at("tasks");
      std::vector<model::TaskIndex> tasks;
      tasks.reserve(tasks_json.size());
      for (std::size_t t = 0; t < tasks_json.size(); ++t) {
        tasks.push_back(static_cast<model::TaskIndex>(tasks_json.at(t).as_int()));
      }
      if (request.contains("deadlines")) {
        // Optional deadline echo: an arriving batch may restate its tasks'
        // deadlines so driver and daemon provably agree on the objective. A
        // bad echo means the caller is working from a different scenario —
        // reject the one batch without mutating or closing the session.
        const std::string problem =
            check_deadline_echo(*net_, request.at("deadlines"), tasks);
        if (!problem.empty()) {
          static obs::Counter& rejects = lifecycle_counter("serve.deadline_rejects");
          rejects.add(1);
          Json reply = Json::object();
          reply.set("ok", false);
          reply.set("op", "reject");
          reply.set("message", problem);
          return Reply{reply.dump(), false};
        }
      }
      record = online_->on_arrival(slot, tasks);
    } else {
      const model::ChargerIndex charger =
          static_cast<model::ChargerIndex>(request.at("charger").as_int());
      record = online_->on_failure(charger, slot);
    }
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("op", "replanned");
    reply.set("slot", static_cast<int>(slot));
    reply.set("trigger", op == "arrive" ? "arrival" : "failure");
    reply.set("replanned", record != nullptr);
    reply.set("known_tasks", static_cast<std::int64_t>(online_->known_tasks()));
    if (record != nullptr) {
      reply.set("plan_start", static_cast<int>(record->plan_start));
      reply.set("messages", u64_json(record->messages));
      reply.set("rounds", u64_json(record->rounds));
      reply.set("row_evals", u64_json(record->row_evals));
    }
    return Reply{reply.dump(), false};
  }

  if (op == "finish") {
    if (!opened()) throw std::logic_error("no open session");
    return finish_reply();
  }

  throw std::invalid_argument("unknown op: " + op);
}

Reply Session::finish_reply() {
  const dist::OnlineResult result = online_->finish();
  online_.reset();
  net_.reset();
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("op", "result");
  reply.set("schedule", io::schedule_to_json(result.schedule));
  reply.set("weighted_utility", result.evaluation.weighted_utility);
  reply.set("relaxed_weighted_utility", result.evaluation.relaxed_weighted_utility);
  reply.set("switches", result.evaluation.switches);
  reply.set("messages", u64_json(result.messages));
  reply.set("deliveries", u64_json(result.deliveries));
  reply.set("message_bytes", u64_json(result.message_bytes));
  reply.set("rounds", u64_json(result.rounds));
  reply.set("negotiations", u64_json(result.negotiations));
  reply.set("row_evals", u64_json(result.row_evaluations));
  if (predictor_enabled_) {
    // Predictor ledger, only for sessions that opted in: the reply bytes of
    // a reactive session stay exactly what they were before the predictor
    // subsystem existed.
    Json predictor = Json::object();
    predictor.set("replans_skipped", u64_json(result.replans_skipped));
    predictor.set("hits", u64_json(result.predictor.hits));
    predictor.set("misses", u64_json(result.predictor.misses));
    predictor.set("batched", u64_json(result.predictor.batched));
    reply.set("predictor", std::move(predictor));
  }
  static obs::Counter& finished_sessions = lifecycle_counter("serve.sessions.finished");
  finished_sessions.add(1);
  // The result is the session's terminal reply: one run per connection keeps
  // the protocol state machine trivially restartable (reconnect to re-open).
  return Reply{reply.dump(), /*close=*/true};
}

std::optional<Reply> Session::drain_finish() {
  if (!opened()) return std::nullopt;
  return finish_reply();
}

}  // namespace haste::serve
