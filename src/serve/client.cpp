#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>

#include "io/scenario_io.hpp"
#include "serve/session.hpp"

namespace haste::serve {

namespace {

using util::Json;

std::string u64_text(const Json& json) {
  return json.is_number() ? std::to_string(json.as_int()) : json.as_string();
}

}  // namespace

Client::Client(const std::string& address, const std::string& token)
    : socket_(util::TcpSocket::connect(address)) {
  if (!token.empty() && !socket_.write_all(token + "\n")) {
    throw std::runtime_error("haste_serve client: failed to send auth token");
  }
}

Json Client::read_reply() {
  for (;;) {
    if (!ready_.empty()) {
      const std::string line = ready_.front();
      ready_.erase(ready_.begin());
      if (line.empty()) continue;
      return Json::parse(line);
    }
    if (!socket_.valid()) return Json();
    char buffer[65536];
    const ssize_t n = ::read(socket_.fd(), buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      socket_.close();
      return Json();
    }
    if (n == 0) {
      socket_.close();
      return Json();
    }
    for (std::string& line : lines_.feed(buffer, static_cast<std::size_t>(n))) {
      ready_.push_back(std::move(line));
    }
  }
}

Json Client::call(const Json& request) {
  if (!socket_.valid() || !socket_.write_all(request.dump() + "\n")) return Json();
  return read_reply();
}

Json Client::open(const model::Network& net, const dist::OnlineConfig& config) {
  Json request = Json::object();
  request.set("op", "open");
  request.set("scenario", io::network_to_json(net));
  request.set("config", online_config_to_json(config));
  return call(request);
}

Json Client::arrive(model::SlotIndex slot, const std::vector<model::TaskIndex>& tasks) {
  Json request = Json::object();
  request.set("op", "arrive");
  request.set("slot", static_cast<int>(slot));
  Json array = Json::array();
  for (model::TaskIndex j : tasks) array.push_back(static_cast<int>(j));
  request.set("tasks", std::move(array));
  return call(request);
}

Json Client::fail(model::ChargerIndex charger, model::SlotIndex slot) {
  Json request = Json::object();
  request.set("op", "fail");
  request.set("charger", static_cast<int>(charger));
  request.set("slot", static_cast<int>(slot));
  return call(request);
}

Json Client::finish() {
  Json request = Json::object();
  request.set("op", "finish");
  return call(request);
}

std::vector<ReplayEvent> build_replay_events(
    const model::Network& net, const std::vector<dist::ChargerFailure>& failures) {
  std::map<model::SlotIndex, std::vector<model::TaskIndex>> batches;
  for (model::TaskIndex j = 0; j < net.task_count(); ++j) {
    batches[net.tasks()[static_cast<std::size_t>(j)].release_slot].push_back(j);
  }
  std::vector<dist::ChargerFailure> valid;
  for (const dist::ChargerFailure& failure : failures) {
    if (failure.charger >= 0 && failure.charger < net.charger_count()) {
      valid.push_back(failure);
    }
  }
  // The event queue orders by time with FIFO ties, and run_online inserts
  // every arrival before any failure: merged order is ascending slot,
  // arrivals first on a tie, failures keeping their injection order.
  std::stable_sort(valid.begin(), valid.end(),
                   [](const dist::ChargerFailure& a, const dist::ChargerFailure& b) {
                     return a.slot < b.slot;
                   });
  std::vector<ReplayEvent> events;
  auto failure_it = valid.begin();
  for (const auto& [slot, batch] : batches) {
    while (failure_it != valid.end() && failure_it->slot < slot) {
      events.push_back(ReplayEvent{true, failure_it->slot, {}, failure_it->charger});
      ++failure_it;
    }
    events.push_back(ReplayEvent{false, slot, batch, 0});
  }
  while (failure_it != valid.end()) {
    events.push_back(ReplayEvent{true, failure_it->slot, {}, failure_it->charger});
    ++failure_it;
  }
  return events;
}

ReplayOutcome replay_online(const std::string& address, const std::string& token,
                            const model::Network& net,
                            const dist::OnlineConfig& config,
                            const std::vector<ReplayEvent>& events,
                            int inter_event_sleep_ms) {
  ReplayOutcome outcome;
  Client client(address, token);
  const Json opened = client.open(net, config);
  if (opened.is_null() || !opened.bool_or("ok", false)) return outcome;

  for (const ReplayEvent& event : events) {
    if (inter_event_sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(inter_event_sleep_ms));
    }
    const Json reply = event.is_failure ? client.fail(event.charger, event.slot)
                                        : client.arrive(event.slot, event.tasks);
    if (reply.is_null()) return outcome;  // daemon gone mid-stream
    const std::string op = reply.string_or("op", "");
    if (op == "result") {
      // Unsolicited drain result: the event we just sent was NOT applied.
      outcome.result = reply;
      outcome.finished = true;
      return outcome;
    }
    if (!reply.bool_or("ok", false)) {
      ++outcome.rejected;
      if (op != "reject") return outcome;  // protocol error closed the session
      continue;
    }
    outcome.acked.push_back(event);
  }

  Json reply = client.finish();
  while (!reply.is_null() && reply.string_or("op", "") != "result") {
    // Skip any reject that raced our finish (e.g. the drain cut in).
    if (!reply.bool_or("ok", false) && reply.string_or("op", "") != "reject") break;
    reply = client.read_reply();
  }
  if (!reply.is_null() && reply.string_or("op", "") == "result") {
    outcome.result = reply;
    outcome.finished = true;
  }
  return outcome;
}

dist::OnlineResult replay_locally(const model::Network& net,
                                  const dist::OnlineConfig& config,
                                  const std::vector<ReplayEvent>& events) {
  dist::OnlineSession session(net, config);
  for (const ReplayEvent& event : events) {
    if (event.is_failure) {
      session.on_failure(event.charger, event.slot);
    } else {
      session.on_arrival(event.slot, event.tasks);
    }
  }
  return session.finish();
}

std::string diff_result(const Json& result, const dist::OnlineResult& reference) {
  if (result.is_null()) return "no result reply";
  if (!result.bool_or("ok", false)) return "result reply is not ok";
  const std::string got_schedule = result.at("schedule").dump();
  const std::string want_schedule = io::schedule_to_json(reference.schedule).dump();
  if (got_schedule != want_schedule) return "schedule differs";
  if (result.at("weighted_utility").as_number() !=
      reference.evaluation.weighted_utility) {
    return "weighted_utility differs";
  }
  if (result.at("relaxed_weighted_utility").as_number() !=
      reference.evaluation.relaxed_weighted_utility) {
    return "relaxed_weighted_utility differs";
  }
  const struct {
    const char* key;
    std::uint64_t want;
  } counters[] = {
      {"messages", reference.messages},     {"deliveries", reference.deliveries},
      {"message_bytes", reference.message_bytes}, {"rounds", reference.rounds},
      {"negotiations", reference.negotiations},
      {"row_evals", reference.row_evaluations},
  };
  for (const auto& counter : counters) {
    if (u64_text(result.at(counter.key)) != std::to_string(counter.want)) {
      return std::string(counter.key) + " differs (" + u64_text(result.at(counter.key)) +
             " vs " + std::to_string(counter.want) + ")";
    }
  }
  return "";
}

}  // namespace haste::serve
