// The haste_serve daemon driver: a poll-driven loop that multiplexes many
// scheduling sessions (one per TCP connection, protocol in session.hpp)
// and pipelines their re-plans across a thread pool.
//
// Concurrency model: the driver thread owns every socket and LineBuffer and
// is the only thread that reads, writes, or (dis)connects. A session's
// request line is handed to the pool as a job (at most ONE in flight per
// connection, so a session's events stay strictly ordered); the job runs the
// pure-compute Session::handle_line and pushes its reply onto a
// mutex-protected done queue, waking the driver through a self-pipe. Replies
// leave through the per-connection outbox, which never blocks the driver.
//
// Admission control: at most `max_sessions` concurrent connections (excess
// accepts get a "session-limit" reject line and an immediate close), at most
// 1 executing + `arrival_quota` queued request lines per session (excess
// lines get an "arrival-quota" reject, the connection stays up — note the
// reject is emitted at ingest, so a pipelining client may see it overtake
// the reply of a still-executing earlier line), and the
// PR-5 token handshake (first line must match `auth_token` within
// `auth_timeout_seconds`; a mismatch or a silent peer is closed and counted
// under serve.auth_reject).
//
// Graceful drain (request_drain, typically wired to SIGTERM via
// install_signal_drain): the listener closes, request lines already queued
// still execute, lines arriving afterwards are rejected with "draining",
// and every opened session is finished as if the client had sent
// {"op":"finish"} — the unsolicited result line is flushed before the close,
// so no in-flight re-plan is dropped. run() returns once every connection
// is gone; the caller then flushes metrics/trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/session.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace haste::serve {

struct ServerOptions {
  std::string listen_address = "127.0.0.1:0";  ///< ":0" = ephemeral port
  /// Shared secret each connection must present as its first line; "" =
  /// accept anyone (trusted-network mode, matching the shard runner).
  std::string auth_token;
  std::size_t max_sessions = 256;    ///< concurrent connections admitted
  std::size_t arrival_quota = 1024;  ///< queued request lines per session
  std::size_t threads = 0;           ///< re-plan pool size; 0 = hardware
  /// Per-connection buffering bounds (see ShardOptions): breaching either
  /// kills the connection and bumps `net.overflow`. 0 = unbounded.
  std::size_t max_line_bytes = 8ull << 20;
  std::size_t max_outbox_bytes = 8ull << 20;
  double auth_timeout_seconds = 2.0;  ///< token must arrive within this
  /// Second listener serving plain-text metric scrapes ("host:port", ":0" =
  /// ephemeral; "" = disabled). Each accepted connection gets one HTTP/1.0
  /// response carrying MetricsSnapshot::text_exposition() of the live
  /// registry, then the connection closes — curl, wget, or a bare TCP read
  /// all work as scrapers. Unauthenticated by design (expose it on loopback
  /// or a trusted interface only); it keeps answering during drain so an
  /// operator can watch the drain make progress.
  std::string metrics_address;
};

/// The daemon. Construct (binds the listener), then run() on the driver
/// thread; request_drain() from any thread or a signal handler stops it.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// "host:port" with the actually bound port (resolves ":0").
  std::string address() const;

  /// Bound address of the metrics scrape listener; "" when disabled.
  std::string metrics_address() const;

  /// Serves until drained. Call once, from the thread that owns the server.
  void run();

  /// Initiates graceful drain. Async-signal-safe (an atomic store plus a
  /// self-pipe write), so it may be called from a signal handler.
  void request_drain();

  /// True once request_drain has been called.
  bool draining() const { return drain_requested_.load(std::memory_order_relaxed); }

  /// Routes SIGTERM/SIGINT to `server`->request_drain(). One server at a
  /// time; a second signal after the drain started hard-exits (130).
  static void install_signal_drain(Server* server);

 private:
  struct Connection;
  struct DoneReply {
    std::uint64_t conn_id = 0;
    Reply reply;
  };

  void accept_pending();
  void serve_metrics_scrapes();
  void read_connection(Connection& conn);
  void ingest_line(Connection& conn, const std::string& line);
  void dispatch(Connection& conn);
  void drain_done_replies();
  void send_reject(Connection& conn, const char* reason);
  void start_drain_finishes();
  void flush_and_reap();
  void remove_connection(std::uint64_t id);
  void request_wake();
  int poll_timeout_ms() const;

  ServerOptions options_;
  util::TcpListener listener_;
  util::TcpListener metrics_listener_;  ///< invalid when scrapes are disabled
  int wake_read_fd_ = -1;   ///< self-pipe: jobs and signals wake the poll
  int wake_write_fd_ = -1;
  std::atomic<bool> drain_requested_{false};
  bool drain_started_ = false;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::mutex done_mutex_;
  std::deque<DoneReply> done_;

  /// Declared last so it is destroyed FIRST: in-flight jobs hold pointers
  /// into connections_ and push onto done_, which must outlive them.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace haste::serve
