// Chrome trace-event emitter (the JSON loaded by Perfetto / chrome://tracing):
// complete spans (`ph: "X"`), counter samples (`ph: "C"`), instants
// (`ph: "i"`), and process-name metadata (`ph: "M"`). Disabled by default;
// the enabled check is one relaxed atomic load, so instrumentation sites are
// near-free when tracing is off.
//
// Timestamps are microseconds on the steady (monotonic) clock, which Linux
// shares across processes on a host — a driver that injects events collected
// by its worker processes gets a naturally aligned multi-process timeline,
// with each process a distinct pid track.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace haste::obs {

class Tracer {
 public:
  /// The process-wide tracer used by all instrumentation.
  static Tracer& instance();

  /// Enables tracing and remembers `path`; stop() writes the collected
  /// events there as {"traceEvents": [...]}.
  void start_file(std::string path);

  /// Enables tracing with no output file: events accumulate in memory until
  /// drained with take_events() (how shard workers ship spans to the driver).
  void start_memory();

  /// Disables tracing; in file mode, writes the buffered events first.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds on the steady clock (shared timebase across processes on
  /// one host). Valid whether or not tracing is enabled.
  static std::int64_t now_us();

  /// Emits a complete span. `args` may be a Json object or null. No-op when
  /// disabled. `pid`/`tid` default to the calling process/thread; pass
  /// explicit values to record events on behalf of another process (the
  /// shard driver's per-attempt spans, attributed to the worker).
  void complete(const std::string& name, std::int64_t ts_us,
                std::int64_t dur_us, util::Json args = util::Json(),
                std::int64_t pid = -1, std::int64_t tid = -1);

  /// Emits a thread-scoped instant event. No-op when disabled.
  void instant(const std::string& name, util::Json args = util::Json());

  /// Emits a counter sample (rendered as a stacked track). No-op when
  /// disabled.
  void counter(const std::string& name, double value);

  /// Emits process_name metadata so Perfetto labels the pid track.
  void process_name(const std::string& name);

  /// Drains the buffer as a Json array of trace events (the wire payload a
  /// worker attaches to its shard responses).
  util::Json take_events();

  /// Appends externally collected events (a worker's take_events payload).
  /// Works even when the tracer is enabled in file mode only.
  void inject(const util::Json& events);

  /// Writes {"traceEvents": buffer} to `path` without disabling.
  void write(const std::string& path);

 private:
  void push(util::Json event);

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  std::string path_;
  std::vector<util::Json> events_;
};

/// RAII complete-span helper: captures the start time if tracing is enabled
/// at construction, emits an "X" event on destruction. arg() attaches
/// argument fields (ignored while disabled, so callers need no guards).
class Span {
 public:
  explicit Span(std::string name)
      : name_(std::move(name)),
        start_(Tracer::instance().enabled() ? Tracer::now_us() : -1) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (start_ < 0) return;
    Tracer::instance().complete(name_, start_, Tracer::now_us() - start_,
                                std::move(args_));
  }

  bool active() const { return start_ >= 0; }
  void arg(const std::string& key, util::Json value) {
    if (start_ < 0) return;
    if (!args_.is_object()) args_ = util::Json::object();
    args_.set(key, std::move(value));
  }

 private:
  std::string name_;
  std::int64_t start_;
  util::Json args_;
};

/// RAII timer feeding a metrics Histogram with elapsed microseconds,
/// independent of whether the tracer is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(Tracer::now_us()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    histogram_.record(static_cast<double>(Tracer::now_us() - start_));
  }

 private:
  Histogram& histogram_;
  std::int64_t start_;
};

}  // namespace haste::obs
