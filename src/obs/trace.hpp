// Chrome trace-event emitter (the JSON loaded by Perfetto / chrome://tracing):
// complete spans (`ph: "X"`), counter samples (`ph: "C"`), instants
// (`ph: "i"`), and process-name metadata (`ph: "M"`). Disabled by default;
// the enabled check is one relaxed atomic load, so instrumentation sites are
// near-free when tracing is off.
//
// The event buffer is a bounded drop-oldest ring (set_ring_capacity): a
// long-running daemon left tracing keeps the most recent window instead of
// growing without bound, and every dropped event is latched to the
// `trace.dropped` registry counter. start_file/start_memory begin a fresh
// session — the buffer is cleared and the session epoch advances, so
// back-to-back sessions in one process can never duplicate events (writes
// also drain the buffer). A Span that outlives its session (constructed
// before stop(), destroyed after a later start) is dropped cleanly: its
// destructor carries the epoch it was born under and the tracer refuses
// events from stale epochs.
//
// Timestamps are microseconds on the steady (monotonic) clock, which Linux
// shares across processes on a host — a driver that injects events collected
// by its worker processes gets a naturally aligned multi-process timeline,
// with each process a distinct pid track.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace haste::obs {

class Tracer {
 public:
  /// Default ring capacity: generous enough that a bounded experiment run
  /// keeps every event, small enough that an always-on daemon cannot grow
  /// without bound (~1M events).
  static constexpr std::size_t kDefaultRingCapacity = 1u << 20;

  /// The process-wide tracer used by all instrumentation.
  static Tracer& instance();

  /// Enables tracing and remembers `path`; stop() writes the collected
  /// events there as {"traceEvents": [...]}. Begins a fresh session: any
  /// buffered events from a previous session are discarded and the session
  /// epoch advances.
  void start_file(std::string path);

  /// Enables tracing with no output file: events accumulate in memory until
  /// drained with take_events() (how shard workers ship spans to the driver).
  /// Begins a fresh session like start_file.
  void start_memory();

  /// Disables tracing; in file mode, writes the buffered events first (the
  /// write drains the buffer) and forgets the path, so a later session
  /// cannot re-write the file with unrelated events. Memory-mode events stay
  /// buffered for a post-stop take_events().
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the event buffer: once full, pushing a new event drops the OLDEST
  /// buffered one and bumps the `trace.dropped` registry counter. Takes
  /// effect immediately (an over-full buffer is trimmed). Clamped to >= 1.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const;

  /// The current session epoch: advanced by every start_file/start_memory.
  /// 0 means tracing has never been started in this process.
  std::uint64_t session() const { return session_.load(std::memory_order_relaxed); }

  /// Microseconds on the steady clock (shared timebase across processes on
  /// one host). Valid whether or not tracing is enabled.
  static std::int64_t now_us();

  /// Emits a complete span. `args` may be a Json object or null. No-op when
  /// disabled. `pid`/`tid` default to the calling process/thread; pass
  /// explicit values to record events on behalf of another process (the
  /// shard driver's per-attempt spans, attributed to the worker). A non-zero
  /// `session` restricts the event to that epoch: if the tracer has since
  /// been restarted the event is silently dropped (how Span avoids
  /// contaminating a later session).
  void complete(const std::string& name, std::int64_t ts_us,
                std::int64_t dur_us, util::Json args = util::Json(),
                std::int64_t pid = -1, std::int64_t tid = -1,
                std::uint64_t session = 0);

  /// Emits a thread-scoped instant event. No-op when disabled.
  void instant(const std::string& name, util::Json args = util::Json());

  /// Emits a counter sample (rendered as a stacked track). No-op when
  /// disabled.
  void counter(const std::string& name, double value);

  /// Emits process_name metadata so Perfetto labels the pid track.
  void process_name(const std::string& name);

  /// Drains the buffer as a Json array of trace events (the wire payload a
  /// worker attaches to its shard responses).
  util::Json take_events();

  /// Appends externally collected events (a worker's take_events payload).
  /// Works even when the tracer is enabled in file mode only. Subject to the
  /// ring cap like locally emitted events.
  void inject(const util::Json& events);

  /// Writes {"traceEvents": buffer} to `path` without disabling, then clears
  /// the buffer — repeated writes never duplicate events (each write holds
  /// the window since the previous one).
  void write(const std::string& path);

 private:
  void push(util::Json event, std::uint64_t session = 0);
  // Both require mutex_ held.
  void push_locked(util::Json event);
  util::Json drain_locked();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};  ///< modified only under mutex_
  mutable std::mutex mutex_;
  std::string path_;
  std::deque<util::Json> events_;
  std::size_t capacity_ = kDefaultRingCapacity;
  Counter* dropped_ = nullptr;  ///< lazy handle to `trace.dropped`
};

/// RAII complete-span helper: captures the start time (and session epoch) if
/// tracing is enabled at construction, emits an "X" event on destruction.
/// A span destroyed after its session ended — tracing stopped, or stopped
/// and restarted — emits nothing. arg() attaches argument fields (ignored
/// while disabled, so callers need no guards).
class Span {
 public:
  explicit Span(std::string name)
      : name_(std::move(name)),
        start_(Tracer::instance().enabled() ? Tracer::now_us() : -1),
        session_(start_ >= 0 ? Tracer::instance().session() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (start_ < 0) return;
    Tracer::instance().complete(name_, start_, Tracer::now_us() - start_,
                                std::move(args_), /*pid=*/-1, /*tid=*/-1,
                                session_);
  }

  bool active() const { return start_ >= 0; }
  void arg(const std::string& key, util::Json value) {
    if (start_ < 0) return;
    if (!args_.is_object()) args_ = util::Json::object();
    args_.set(key, std::move(value));
  }

 private:
  std::string name_;
  std::int64_t start_;
  std::uint64_t session_;
  util::Json args_;
};

/// RAII timer feeding a metrics Histogram with elapsed microseconds,
/// independent of whether the tracer is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(Tracer::now_us()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    histogram_.record(static_cast<double>(Tracer::now_us() - start_));
  }

 private:
  Histogram& histogram_;
  std::int64_t start_;
};

/// Background thread that periodically converts registry deltas into
/// Tracer::counter samples, so Perfetto counter tracks show per-window rates
/// instead of monotone process totals. Each tick snapshots the registry,
/// diffs it against the previous tick (MetricsSnapshot::delta), and emits:
///   - one sample per counter with its windowed delta (`trace.dropped` is
///     the exception: it is emitted cumulatively, so a validator can check
///     the series is non-decreasing and consistent with the registry),
///   - one sample per gauge with its absolute value,
///   - `<name>.count` (windowed) and `<name>.p99` (of the window) per
///     histogram.
/// stop() — also run by the destructor — joins the thread and performs one
/// final flush, so short runs still get at least one sample of every
/// instrument. Samples are no-ops while the tracer is disabled.
class MetricsFlusher {
 public:
  explicit MetricsFlusher(int period_ms = 500);
  ~MetricsFlusher();
  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Joins the flusher thread after one final flush. Idempotent.
  void stop();

  /// Emits one windowed flush immediately (thread-safe; the periodic thread
  /// and callers serialize on an internal mutex). Exposed for deterministic
  /// tests and for callers that want a sample at a known point.
  void flush_now();

 private:
  std::mutex flush_mutex_;        ///< serializes flushes; guards prev_
  MetricsSnapshot prev_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace haste::obs
