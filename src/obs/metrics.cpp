#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace haste::obs {

namespace {

// u64s ride as decimal strings (same convention as the shard wire protocol):
// a JSON number is a double and silently rounds above 2^53.
util::Json u64_json(std::uint64_t value) { return util::Json(std::to_string(value)); }

std::uint64_t u64_from(const util::Json& json) {
  const std::string& text = json.as_string();
  if (text.empty()) throw util::JsonError("empty u64 string");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE || text[0] == '-') {
    throw util::JsonError("malformed u64 string: " + text);
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Counter::Counter() : cells_(new Cell[kCellCount]) {}

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kCellCount; ++i) {
    sum += cells_[i].value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() : cells_(new Cell[kCellCount]) {}

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // < 1, negative, and NaN all land in 0
  const int exponent = std::ilogb(value);  // floor(log2(value)), >= 0 here
  const std::size_t index = static_cast<std::size_t>(exponent) + 1;
  return index < kBucketCount ? index : kBucketCount - 1;
}

void Histogram::record(double value) {
  Cell& cell = cells_[thread_slot() & kCellMask];
  const std::lock_guard<std::mutex> lock(cell.mutex);
  cell.stats.add(value);
  ++cell.buckets[bucket_index(value)];
}

double MetricsSnapshot::HistogramSnapshot::quantile_upper(double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank is ceil(q * total) so q = 1 targets the last observation and
  // q = 0 the first.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Bucket 0 holds values < 1; bucket i >= 1 holds [2^(i-1), 2^i).
      const double upper = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
      // The exact max is known from the moments; never report past it.
      return stats.count() > 0 ? std::min(upper, stats.max()) : upper;
    }
  }
  return stats.count() > 0 ? stats.max() : 0.0;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, hist] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.stats.merge(hist.stats);
    if (!hist.buckets.empty()) {
      if (mine.buckets.size() < hist.buckets.size()) {
        mine.buckets.resize(hist.buckets.size(), 0);
      }
      for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
        mine.buckets[i] += hist.buckets[i];
      }
    }
  }
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    out.counters[name] = value >= before ? value - before : 0;
  }
  out.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    const auto it = prev.histograms.find(name);
    if (it == prev.histograms.end()) {
      out.histograms[name] = hist;
      continue;
    }
    const HistogramSnapshot& before = it->second;
    HistogramSnapshot window;
    const std::size_t width = std::max(hist.buckets.size(), before.buckets.size());
    window.buckets.assign(width, 0);
    for (std::size_t b = 0; b < width; ++b) {
      const std::uint64_t cur = b < hist.buckets.size() ? hist.buckets[b] : 0;
      const std::uint64_t old = b < before.buckets.size() ? before.buckets[b] : 0;
      window.buckets[b] = cur >= old ? cur - old : 0;
    }
    const std::size_t n_cur = hist.stats.count();
    const std::size_t n_old = before.stats.count();
    if (n_cur > n_old) {
      const std::size_t n_win = n_cur - n_old;
      // Invert Chan's combine (cumulative = prev ⊕ window):
      //   mean_win = (n_cur·mean_cur − n_old·mean_old) / n_win
      //   m2_win = m2_cur − m2_old − δ²·n_old·n_win/n_cur, δ = mean_win − mean_old
      const double mean_win =
          (static_cast<double>(n_cur) * hist.stats.mean() -
           static_cast<double>(n_old) * before.stats.mean()) /
          static_cast<double>(n_win);
      const double shift = mean_win - before.stats.mean();
      double m2_win = hist.stats.m2() - before.stats.m2() -
                      shift * shift * static_cast<double>(n_old) *
                          static_cast<double>(n_win) / static_cast<double>(n_cur);
      if (m2_win < 0.0) m2_win = 0.0;  // floating-point noise floor
      window.stats = util::RunningStats::from_moments(
          n_win, mean_win, m2_win, hist.stats.min(), hist.stats.max());
    }
    out.histograms[name] = std::move(window);
  }
  return out;
}

std::string MetricsSnapshot::text_exposition() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + util::Json(value).dump() + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += name + ".count " + std::to_string(hist.stats.count()) + "\n";
    out += name + ".mean " + util::Json(hist.stats.mean()).dump() + "\n";
    out += name + ".p50 " + util::Json(hist.quantile_upper(0.50)).dump() + "\n";
    out += name + ".p99 " + util::Json(hist.quantile_upper(0.99)).dump() + "\n";
    out += name + ".max " + util::Json(hist.stats.max()).dump() + "\n";
  }
  return out;
}

util::Json MetricsSnapshot::to_json() const {
  util::Json out = util::Json::object();
  util::Json counters_json = util::Json::object();
  for (const auto& [name, value] : counters) counters_json.set(name, u64_json(value));
  out.set("counters", std::move(counters_json));
  util::Json gauges_json = util::Json::object();
  for (const auto& [name, value] : gauges) gauges_json.set(name, util::Json(value));
  out.set("gauges", std::move(gauges_json));
  util::Json hists_json = util::Json::object();
  for (const auto& [name, hist] : histograms) {
    util::Json h = util::Json::object();
    h.set("count", u64_json(hist.stats.count()));
    h.set("mean", util::Json(hist.stats.mean()));
    h.set("m2", util::Json(hist.stats.m2()));
    h.set("min", util::Json(hist.stats.min()));
    h.set("max", util::Json(hist.stats.max()));
    // Derived convenience fields for dashboards and SLO checks; from_json
    // ignores them (count/mean/m2/min/max/buckets stay the round-trip truth).
    h.set("p50", util::Json(hist.quantile_upper(0.50)));
    h.set("p99", util::Json(hist.quantile_upper(0.99)));
    util::Json buckets = util::Json::array();
    for (std::uint64_t b : hist.buckets) buckets.push_back(u64_json(b));
    h.set("buckets", std::move(buckets));
    hists_json.set(name, std::move(h));
  }
  out.set("histograms", std::move(hists_json));
  return out;
}

MetricsSnapshot MetricsSnapshot::from_json(const util::Json& json) {
  MetricsSnapshot snap;
  if (json.contains("counters")) {
    for (const auto& [name, value] : json.at("counters").items()) {
      snap.counters[name] = u64_from(value);
    }
  }
  if (json.contains("gauges")) {
    for (const auto& [name, value] : json.at("gauges").items()) {
      snap.gauges[name] = value.as_number();
    }
  }
  if (json.contains("histograms")) {
    for (const auto& [name, h] : json.at("histograms").items()) {
      HistogramSnapshot hist;
      hist.stats = util::RunningStats::from_moments(
          static_cast<std::size_t>(u64_from(h.at("count"))),
          h.at("mean").as_number(), h.at("m2").as_number(),
          h.at("min").as_number(), h.at("max").as_number());
      const util::Json& buckets = h.at("buckets");
      hist.buckets.reserve(buckets.size());
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        hist.buckets.push_back(u64_from(buckets.at(i)));
      }
      snap.histograms[name] = std::move(hist);
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramSnapshot merged;
    merged.buckets.assign(Histogram::kBucketCount, 0);
    for (std::size_t c = 0; c < Histogram::kCellCount; ++c) {
      Histogram::Cell& cell = hist->cells_[c];
      const std::lock_guard<std::mutex> cell_lock(cell.mutex);
      merged.stats.merge(cell.stats);
      for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        merged.buckets[i] += cell.buckets[i];
      }
    }
    snap.histograms[name] = std::move(merged);
  }
  return snap;
}

}  // namespace haste::obs
