// Instrumentation entry points. The classes in metrics.hpp / trace.hpp are
// always compiled (snapshots ride the shard wire protocol in every build);
// these macros are how hot paths touch them, and they compile to nothing
// when the tree is configured with -DHASTE_OBS=OFF — guaranteeing the
// schedulers behave bit-identically with observability stripped.
//
// Counter/gauge/histogram macros cache the registry lookup in a
// function-local static, so the steady-state cost is the instrument's own
// fast path (one relaxed atomic RMW for counters).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace haste::obs {

/// Drop-in stand-in for Span when HASTE_OBS is off: same surface, no code.
struct NullSpan {
  bool active() const { return false; }
  void arg(const std::string&, util::Json) {}
};

}  // namespace haste::obs

#ifdef HASTE_OBS

#define HASTE_OBS_SPAN(var, name) ::haste::obs::Span var{(name)}
#define HASTE_OBS_COUNTER_ADD(name, delta)                                   \
  do {                                                                       \
    static ::haste::obs::Counter& haste_obs_counter_ =                       \
        ::haste::obs::MetricsRegistry::instance().counter(name);             \
    haste_obs_counter_.add(delta);                                           \
  } while (0)
#define HASTE_OBS_GAUGE_SET(name, value)                                     \
  do {                                                                       \
    static ::haste::obs::Gauge& haste_obs_gauge_ =                           \
        ::haste::obs::MetricsRegistry::instance().gauge(name);               \
    haste_obs_gauge_.set(value);                                             \
  } while (0)
#define HASTE_OBS_GAUGE_ADD(name, delta)                                     \
  do {                                                                       \
    static ::haste::obs::Gauge& haste_obs_gauge_ =                           \
        ::haste::obs::MetricsRegistry::instance().gauge(name);               \
    haste_obs_gauge_.add(delta);                                             \
  } while (0)
#define HASTE_OBS_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                       \
    static ::haste::obs::Histogram& haste_obs_histogram_ =                   \
        ::haste::obs::MetricsRegistry::instance().histogram(name);           \
    haste_obs_histogram_.record(value);                                      \
  } while (0)
#define HASTE_OBS_INSTANT(name) ::haste::obs::Tracer::instance().instant(name)

#else  // !HASTE_OBS

// The no-op forms still (void)-evaluate their operands so a variable used
// only for instrumentation does not become unused in -DHASTE_OBS=OFF builds.
#define HASTE_OBS_SPAN(var, name) [[maybe_unused]] ::haste::obs::NullSpan var {}
#define HASTE_OBS_COUNTER_ADD(name, delta) \
  do {                                     \
    (void)(name);                          \
    (void)(delta);                         \
  } while (0)
#define HASTE_OBS_GAUGE_SET(name, value) \
  do {                                   \
    (void)(name);                        \
    (void)(value);                       \
  } while (0)
#define HASTE_OBS_GAUGE_ADD(name, delta) \
  do {                                   \
    (void)(name);                        \
    (void)(delta);                       \
  } while (0)
#define HASTE_OBS_HISTOGRAM_RECORD(name, value) \
  do {                                          \
    (void)(name);                               \
    (void)(value);                              \
  } while (0)
#define HASTE_OBS_INSTANT(name) \
  do {                          \
    (void)(name);               \
  } while (0)

#endif  // HASTE_OBS
