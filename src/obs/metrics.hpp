// Process-wide metrics registry: named counters, gauges, and log-scale
// histograms shared by every layer (scheduler, thread pool, shard runner).
//
// Hot-path cost model:
//   - Counter::add is lock-free: each thread owns a cache-line-padded atomic
//     cell (threads beyond the shard count share cells by index wrap, which
//     only costs contention, never correctness).
//   - Gauge is a single atomic double (CAS add, relaxed store/load).
//   - Histogram::record takes one uncontended per-thread mutex (shared only
//     with snapshot aggregation, which is rare).
// Snapshots aggregate the shards into plain maps that merge exactly across
// processes (worker -> driver) and round-trip through JSON bit-exact, with
// u64s carried as decimal strings per the shard wire convention.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace haste::obs {

/// Dense per-process id for the calling thread, assigned on first use.
/// Used to index per-thread metric shards; never reused within a process.
std::size_t thread_slot();

/// Monotonically increasing counter (events, rows evaluated, bytes, ...).
class Counter {
 public:
  Counter();

  /// Adds `delta` on the calling thread's shard. Lock-free.
  void add(std::uint64_t delta = 1) {
    cells_[thread_slot() & kCellMask].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum across all shards. Monotone but not a consistent cut while other
  /// threads are adding (fine for telemetry).
  std::uint64_t value() const;

 private:
  // 64 shards x one cache line; threads beyond 64 wrap onto existing cells.
  static constexpr std::size_t kCellCount = 64;
  static constexpr std::size_t kCellMask = kCellCount - 1;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::unique_ptr<Cell[]> cells_;
};

/// Last-write-wins scalar (queue depth, pool size, configuration echoes).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming distribution: Welford moments plus fixed log2 buckets.
/// Bucket 0 holds values < 1; bucket i (i >= 1) holds [2^(i-1), 2^i);
/// the last bucket absorbs everything larger. Units are caller-defined
/// (the tracer helpers record microseconds).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 64;

  Histogram();

  /// Records one observation on the calling thread's shard.
  void record(double value);

  /// Bucket index for `value` under the fixed log2 layout.
  static std::size_t bucket_index(double value);

 private:
  friend class MetricsRegistry;
  struct Cell {
    std::mutex mutex;
    util::RunningStats stats;
    std::array<std::uint64_t, kBucketCount> buckets{};
  };
  static constexpr std::size_t kCellCount = 16;
  static constexpr std::size_t kCellMask = kCellCount - 1;
  std::unique_ptr<Cell[]> cells_;
};

/// Point-in-time aggregation of a registry (or of a merge of several):
/// plain values, no shards. Serializable and exactly mergeable, so worker
/// processes can ship snapshots to the shard driver over the wire protocol.
struct MetricsSnapshot {
  struct HistogramSnapshot {
    util::RunningStats stats;
    std::vector<std::uint64_t> buckets;  // empty means all-zero

    /// Upper bound of the value at quantile `q` in [0, 1] under the log2
    /// bucket layout: the smallest bucket upper edge whose cumulative count
    /// reaches q * count, clamped to the exact observed max. Conservative
    /// (an upper bound, never an underestimate), which is the right bias
    /// for latency SLO reporting.
    ///
    /// Sentinel: when every bucket is zero (default-constructed snapshot, or
    /// a registered histogram that never recorded), returns exactly 0.0 for
    /// every q — including q = 0. A populated histogram only reports 0.0
    /// when its observed max is exactly 0.0 (the edge is clamped to the
    /// max), so consumers that must tell "no data" from "all zeros" check
    /// stats.count(), not the quantile.
    double quantile_upper(double q) const;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Folds `other` in: counters and histogram buckets add, histogram moments
  /// combine via RunningStats::merge, gauges are last-write-wins.
  void merge(const MetricsSnapshot& other);

  /// Windowed difference of two cumulative snapshots (`this` the later one):
  ///   - counters subtract, clamped at 0 (a counter that went backwards —
  ///     e.g. a restarted worker — contributes nothing to the window);
  ///   - gauges carry the CURRENT absolute value (a gauge is a level, not a
  ///     rate; windowing a level is not meaningful);
  ///   - histogram buckets subtract, and the window's count/mean/M2 are
  ///     reconstructed exactly by inverting the parallel (Chan) merge that
  ///     merge() applies. min/max keep the cumulative envelope — the
  ///     window-exact extrema are not recoverable from moments, so the
  ///     bound is conservative (never narrower than the truth).
  /// Instruments missing from `prev` count as all-zero there, so a freshly
  /// created instrument surfaces with its full value in the first window.
  MetricsSnapshot delta(const MetricsSnapshot& prev) const;

  /// Plain-text scrape format: one `name value` line per counter and gauge,
  /// and `<name>.count`, `<name>.mean`, `<name>.p50`, `<name>.p99`,
  /// `<name>.max` lines per histogram (quantiles via quantile_upper). This
  /// is what the haste_serve metrics endpoint returns to `watch curl`-style
  /// scrape loops.
  std::string text_exposition() const;

  /// Exact JSON round-trip (u64s as decimal strings, doubles as numbers).
  util::Json to_json() const;
  static MetricsSnapshot from_json(const util::Json& json);
};

/// Registry of named instruments. Instruments are created on first use and
/// live for the registry's lifetime, so returned references are stable and
/// callers may cache them (the HASTE_OBS_* macros do, in a function-local
/// static).
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumentation macros.
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Aggregates every instrument into plain values. Cumulative since
  /// process start; take deltas of snapshots to window.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace haste::obs
