#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <utility>

namespace haste::obs {

namespace {

std::int64_t process_pid() { return static_cast<std::int64_t>(::getpid()); }

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::start_file(std::string path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::start_memory() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_.clear();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path = path_;
  }
  if (!path.empty()) write(path);
}

void Tracer::push(util::Json event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::complete(const std::string& name, std::int64_t ts_us,
                      std::int64_t dur_us, util::Json args, std::int64_t pid,
                      std::int64_t tid) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("X"));
  event.set("ts", util::Json(ts_us));
  event.set("dur", util::Json(dur_us < 0 ? std::int64_t{0} : dur_us));
  event.set("pid", util::Json(pid < 0 ? process_pid() : pid));
  event.set("tid", util::Json(
      tid < 0 ? static_cast<std::int64_t>(thread_slot()) : tid));
  if (args.is_object()) event.set("args", std::move(args));
  push(std::move(event));
}

void Tracer::instant(const std::string& name, util::Json args) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("i"));
  event.set("s", util::Json("t"));  // thread-scoped tick mark
  event.set("ts", util::Json(now_us()));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(static_cast<std::int64_t>(thread_slot())));
  if (args.is_object()) event.set("args", std::move(args));
  push(std::move(event));
}

void Tracer::counter(const std::string& name, double value) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("C"));
  event.set("ts", util::Json(now_us()));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(std::int64_t{0}));
  util::Json args = util::Json::object();
  args.set("value", util::Json(value));
  event.set("args", std::move(args));
  push(std::move(event));
}

void Tracer::process_name(const std::string& name) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json("process_name"));
  event.set("ph", util::Json("M"));
  event.set("ts", util::Json(std::int64_t{0}));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(std::int64_t{0}));
  util::Json args = util::Json::object();
  args.set("name", util::Json(name));
  event.set("args", std::move(args));
  push(std::move(event));
}

util::Json Tracer::take_events() {
  std::vector<util::Json> drained;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(events_);
  }
  util::Json out = util::Json::array();
  for (auto& event : drained) out.push_back(std::move(event));
  return out;
}

void Tracer::inject(const util::Json& events) {
  if (!events.is_array()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events_.push_back(events.at(i));
  }
}

void Tracer::write(const std::string& path) {
  util::Json doc = util::Json::object();
  util::Json array = util::Json::array();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& event : events_) array.push_back(event);
  }
  doc.set("traceEvents", std::move(array));
  util::save_json_file(path, doc);
}

}  // namespace haste::obs
