#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <utility>

namespace haste::obs {

namespace {

std::int64_t process_pid() { return static_cast<std::int64_t>(::getpid()); }

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::start_file(std::string path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_ = std::move(path);
    events_.clear();  // fresh session: never duplicate a previous one
    session_.store(session_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::start_memory() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_.clear();
    events_.clear();
    session_.store(session_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path = std::move(path_);
    // Forget the path: a second stop(), or a later session's stop, must not
    // overwrite this session's file with stale or empty contents.
    path_.clear();
  }
  if (!path.empty()) write(path);
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    if (dropped_ == nullptr) {
      dropped_ = &MetricsRegistry::instance().counter("trace.dropped");
    }
    dropped_->add(1);
  }
}

std::size_t Tracer::ring_capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Tracer::push_locked(util::Json event) {
  if (events_.size() >= capacity_) {
    events_.pop_front();  // drop-oldest: the recent window is the useful one
    if (dropped_ == nullptr) {
      dropped_ = &MetricsRegistry::instance().counter("trace.dropped");
    }
    dropped_->add(1);
  }
  events_.push_back(std::move(event));
}

void Tracer::push(util::Json event, std::uint64_t session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (session != 0 && session != session_.load(std::memory_order_relaxed)) {
    return;  // the emitter outlived its session; never contaminate this one
  }
  push_locked(std::move(event));
}

void Tracer::complete(const std::string& name, std::int64_t ts_us,
                      std::int64_t dur_us, util::Json args, std::int64_t pid,
                      std::int64_t tid, std::uint64_t session) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("X"));
  event.set("ts", util::Json(ts_us));
  event.set("dur", util::Json(dur_us < 0 ? std::int64_t{0} : dur_us));
  event.set("pid", util::Json(pid < 0 ? process_pid() : pid));
  event.set("tid", util::Json(
      tid < 0 ? static_cast<std::int64_t>(thread_slot()) : tid));
  if (args.is_object()) event.set("args", std::move(args));
  push(std::move(event), session);
}

void Tracer::instant(const std::string& name, util::Json args) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("i"));
  event.set("s", util::Json("t"));  // thread-scoped tick mark
  event.set("ts", util::Json(now_us()));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(static_cast<std::int64_t>(thread_slot())));
  if (args.is_object()) event.set("args", std::move(args));
  push(std::move(event));
}

void Tracer::counter(const std::string& name, double value) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json(name));
  event.set("ph", util::Json("C"));
  event.set("ts", util::Json(now_us()));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(std::int64_t{0}));
  util::Json args = util::Json::object();
  args.set("value", util::Json(value));
  event.set("args", std::move(args));
  push(std::move(event));
}

void Tracer::process_name(const std::string& name) {
  if (!enabled()) return;
  util::Json event = util::Json::object();
  event.set("name", util::Json("process_name"));
  event.set("ph", util::Json("M"));
  event.set("ts", util::Json(std::int64_t{0}));
  event.set("pid", util::Json(process_pid()));
  event.set("tid", util::Json(std::int64_t{0}));
  util::Json args = util::Json::object();
  args.set("name", util::Json(name));
  event.set("args", std::move(args));
  push(std::move(event));
}

util::Json Tracer::drain_locked() {
  util::Json out = util::Json::array();
  for (auto& event : events_) out.push_back(std::move(event));
  events_.clear();
  return out;
}

util::Json Tracer::take_events() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return drain_locked();
}

void Tracer::inject(const util::Json& events) {
  if (!events.is_array()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < events.size(); ++i) {
    push_locked(events.at(i));
  }
}

void Tracer::write(const std::string& path) {
  util::Json doc = util::Json::object();
  util::Json array;
  {
    // Draining on write is what makes repeated writes (and back-to-back
    // sessions) duplication-free: each write holds exactly the window since
    // the previous drain.
    const std::lock_guard<std::mutex> lock(mutex_);
    array = drain_locked();
  }
  doc.set("traceEvents", std::move(array));
  util::save_json_file(path, doc);
}

MetricsFlusher::MetricsFlusher(int period_ms) {
  const auto period = std::chrono::milliseconds(period_ms < 1 ? 1 : period_ms);
  thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stopping_) {
      if (wake_.wait_for(lock, period, [this] { return stopping_; })) break;
      lock.unlock();
      flush_now();
      lock.lock();
    }
  });
}

MetricsFlusher::~MetricsFlusher() { stop(); }

void MetricsFlusher::stop() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stopping_) return;  // already stopped; the final flush already ran
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final window so even a run shorter than the period samples every
  // instrument at least once.
  flush_now();
}

void MetricsFlusher::flush_now() {
  const std::lock_guard<std::mutex> lock(flush_mutex_);
  Tracer& tracer = Tracer::instance();
  MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const MetricsSnapshot window = snap.delta(prev_);
  for (const auto& [name, value] : window.counters) {
    if (name == "trace.dropped") {
      // Cumulative on purpose: the emitted series is then non-decreasing,
      // which trace_check --check-counters verifies against the registry.
      tracer.counter(name, static_cast<double>(snap.counters.at(name)));
    } else {
      tracer.counter(name, static_cast<double>(value));
    }
  }
  for (const auto& [name, value] : window.gauges) tracer.counter(name, value);
  for (const auto& [name, hist] : window.histograms) {
    tracer.counter(name + ".count", static_cast<double>(hist.stats.count()));
    if (hist.stats.count() > 0) {
      tracer.counter(name + ".p99", hist.quantile_upper(0.99));
    }
  }
  prev_ = std::move(snap);
}

}  // namespace haste::obs
